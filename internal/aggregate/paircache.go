package aggregate

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// PairCache memoizes ComparePair decisions across aggregation jobs, keyed
// by the content fingerprints of the two captures. CrowdMap's aggregation
// is all-pairs: when a new upload arrives, every previously-compared pair
// of the corpus is re-examined from scratch unless its decision is
// remembered. With the cache, an incremental run only pays for pairs that
// involve genuinely new content — the warm-path behavior the paper buys
// with a Spark cluster.
//
// Entries are keyed order-independently (the lexicographically smaller
// fingerprint first) and store the decision in that canonical orientation;
// a hit in the opposite orientation is inverted on the way out, which is
// exact because the comparison is mirror-symmetric. The cache also stores
// negative decisions (ok=false): knowing two tracks do NOT merge is just
// as reusable as knowing they do.
//
// The cache is invalidated wholesale when the aggregation parameters
// change: fingerprints cover capture content only, so a parameters
// signature is recorded with the entries and a mismatch flushes the map.
type PairCache struct {
	mu      sync.Mutex
	max     int
	sig     string
	entries map[pairKey]pairEntry
}

type pairKey struct {
	lo, hi string
}

type pairEntry struct {
	m  Match
	ok bool
}

// DefaultPairCacheSize bounds the number of memoized pairs. Decisions are
// small (a Match holds a handful of anchors), so a generous bound costs
// little memory while covering corpora far beyond the evaluation's.
const DefaultPairCacheSize = 1 << 20

// NewPairCache returns a cache bounded to maxEntries decisions;
// non-positive means DefaultPairCacheSize.
func NewPairCache(maxEntries int) *PairCache {
	if maxEntries <= 0 {
		maxEntries = DefaultPairCacheSize
	}
	return &PairCache{max: maxEntries, entries: make(map[pairKey]pairEntry)}
}

// Len reports the number of cached decisions; nil-safe.
func (c *PairCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// paramsSignature serializes the comparison-relevant parameters for use
// as the cache's flush key. It delegates to the explicit versioned
// Params.Signature encoding: the earlier %+v formatting was stable only
// by accident — any future pointer or func field would have embedded a
// process-local address, silently flushing the cache on every restart
// and defeating the exported warm replay the delta path depends on.
func paramsSignature(p Params) string {
	return p.Signature()
}

// Signature returns a stable, versioned encoding of every
// decision-relevant aggregation parameter. It is persisted inside
// exported cache dumps and compared across process restarts, so it must
// be a pure function of the field values: each field is written
// explicitly (the Obs registry pointer is deliberately excluded — it
// never influences decisions). Bump the version prefix whenever a field
// is added, removed, or reinterpreted so stale persisted decisions flush
// instead of being replayed under different semantics.
func (p Params) Signature() string {
	return fmt.Sprintf(
		"agg-v1;eps=%g;delta=%d;hl=%g;rdt=%g;rdist=%g;maxanch=%d;stride=%d;maxhead=%g;minsup=%d;%s",
		p.Epsilon, p.Delta, p.HL, p.ResampleDT, p.ResampleDist,
		p.MaxAnchors, p.AnchorStride, p.MaxHeadingDiff, p.MinAnchorSupport,
		p.KF.Signature())
}

// get returns the cached decision for (ha, hb) under signature sig, with
// inverted set when the entry is stored in the opposite orientation.
func (c *PairCache) get(sig, ha, hb string) (e pairEntry, inverted, found bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sig != sig {
		return pairEntry{}, false, false
	}
	k := pairKey{lo: ha, hi: hb}
	if k.lo > k.hi {
		k.lo, k.hi = k.hi, k.lo
		inverted = true
	}
	e, found = c.entries[k]
	return e, inverted, found
}

// put stores a decision computed with hashes (ha, hb) in canonical
// orientation. A signature change flushes the whole cache first.
func (c *PairCache) put(sig, ha, hb string, m Match, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sig != sig {
		clear(c.entries)
		c.sig = sig
	}
	k := pairKey{lo: ha, hi: hb}
	if k.lo > k.hi {
		k.lo, k.hi = k.hi, k.lo
		m = invertMatch(m)
	}
	if _, exists := c.entries[k]; !exists && len(c.entries) >= c.max {
		// At capacity and the insert genuinely grows the map: evict one
		// arbitrary entry. Eviction order affects only performance, never
		// decisions. Overwrites of an existing key must not evict — doing
		// so silently shrank the cache below its bound on every refreshed
		// decision.
		for old := range c.entries {
			delete(c.entries, old)
			break
		}
	}
	c.entries[k] = pairEntry{m: m, ok: ok}
}

// invertMatch mirrors a Match to the swapped track order: A/B swap,
// translations negate, and every anchor swaps its key-frame indices.
func invertMatch(m Match) Match {
	out := m
	out.A, out.B = m.B, m.A
	out.Translation = m.Translation.Scale(-1)
	if len(m.Anchors) > 0 {
		out.Anchors = make([]Anchor, len(m.Anchors))
		for i, an := range m.Anchors {
			out.Anchors[i] = Anchor{
				IA: an.IB, IB: an.IA, S2: an.S2,
				Translation: an.Translation.Scale(-1),
			}
		}
	}
	return out
}

// pairCacheDump is the serialized form of a PairCache; entries are sorted
// by key so the encoding is deterministic.
type pairCacheDump struct {
	Sig     string          `json:"sig"`
	Entries []pairDumpEntry `json:"entries"`
}

type pairDumpEntry struct {
	Lo    string `json:"lo"`
	Hi    string `json:"hi"`
	Match Match  `json:"match"`
	OK    bool   `json:"ok"`
}

// ExportJSON serializes the cache — parameters signature plus every
// memoized decision — so a daemon can checkpoint pair decisions and
// reload them after a restart instead of re-running the anchor searches.
// Nil-safe (returns an empty dump).
func (c *PairCache) ExportJSON() ([]byte, error) {
	dump := pairCacheDump{}
	if c != nil {
		c.mu.Lock()
		dump.Sig = c.sig
		dump.Entries = make([]pairDumpEntry, 0, len(c.entries))
		for k, e := range c.entries {
			dump.Entries = append(dump.Entries, pairDumpEntry{Lo: k.lo, Hi: k.hi, Match: e.m, OK: e.ok})
		}
		c.mu.Unlock()
		sort.Slice(dump.Entries, func(i, j int) bool {
			if dump.Entries[i].Lo != dump.Entries[j].Lo {
				return dump.Entries[i].Lo < dump.Entries[j].Lo
			}
			return dump.Entries[i].Hi < dump.Entries[j].Hi
		})
	}
	return json.Marshal(&dump)
}

// ImportJSON replaces the cache contents with a previously exported dump.
// Decisions beyond the cache bound are dropped (the bound wins over the
// dump). The signature rides along, so a dump recorded under different
// comparison parameters flushes naturally on the first put.
func (c *PairCache) ImportJSON(data []byte) error {
	if c == nil {
		return fmt.Errorf("aggregate: import into nil PairCache")
	}
	var dump pairCacheDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return fmt.Errorf("aggregate: decode pair cache dump: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sig = dump.Sig
	c.entries = make(map[pairKey]pairEntry, len(dump.Entries))
	for _, e := range dump.Entries {
		if len(c.entries) >= c.max {
			break
		}
		c.entries[pairKey{lo: e.Lo, hi: e.Hi}] = pairEntry{m: e.Match, ok: e.OK}
	}
	return nil
}

// ComparePairCached is ComparePair with memoization: when both tracks
// carry content fingerprints and the cache holds a decision for the pair
// under the current parameters, the expensive anchor search and LCS
// verification are skipped entirely. Cache outcomes are counted on the
// Params' Obs registry as compare.cache.hits / .misses / .bypass.
func ComparePairCached(ai, bi int, a, b *Track, p Params, cache *PairCache) (Match, bool, error) {
	if cache == nil || a.Hash == "" || b.Hash == "" {
		if cache != nil {
			p.KF.Obs.Counter("compare.cache.bypass").Inc()
		}
		return ComparePair(ai, bi, a, b, p)
	}
	sig := paramsSignature(p)
	if e, inverted, found := cache.get(sig, a.Hash, b.Hash); found {
		p.KF.Obs.Counter("compare.cache.hits").Inc()
		m := e.m
		if inverted {
			m = invertMatch(m)
		}
		// Track indices are job-local; rebind them to this job's slots.
		m.A, m.B = ai, bi
		return m, e.ok, nil
	}
	p.KF.Obs.Counter("compare.cache.misses").Inc()
	m, ok, err := ComparePair(ai, bi, a, b, p)
	if err != nil {
		return m, ok, err
	}
	cache.put(sig, a.Hash, b.Hash, m, ok)
	return m, ok, nil
}
