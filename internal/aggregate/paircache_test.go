package aggregate

import (
	"reflect"
	"testing"

	"crowdmap/internal/geom"
	"crowdmap/internal/world"
)

func testMatch() Match {
	return Match{
		A: 0, B: 1, S3: 0.6, Support: 3,
		Translation: geom.P(2, -1),
		Anchors: []Anchor{
			{IA: 4, IB: 7, S2: 0.2, Translation: geom.P(2, -1)},
			{IA: 5, IB: 9, S2: 0.15, Translation: geom.P(2.1, -0.9)},
		},
	}
}

func TestInvertMatchRoundTrip(t *testing.T) {
	m := testMatch()
	inv := invertMatch(m)
	if inv.A != m.B || inv.B != m.A {
		t.Errorf("inverted endpoints = (%d,%d)", inv.A, inv.B)
	}
	if inv.Translation != m.Translation.Scale(-1) {
		t.Errorf("inverted translation = %v", inv.Translation)
	}
	if inv.Anchors[0].IA != m.Anchors[0].IB || inv.Anchors[0].IB != m.Anchors[0].IA {
		t.Errorf("anchor indices not swapped: %+v", inv.Anchors[0])
	}
	if back := invertMatch(inv); !reflect.DeepEqual(back, m) {
		t.Errorf("double inversion diverged:\n got %+v\nwant %+v", back, m)
	}
}

func TestPairCacheOrientation(t *testing.T) {
	c := NewPairCache(0)
	m := testMatch()
	// Store with hashes in non-canonical order (ha > hb): the entry must
	// come back correctly in both query orientations.
	c.put("sig", "zzz", "aaa", m, true)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	e, inverted, found := c.get("sig", "zzz", "aaa")
	if !found || !e.ok {
		t.Fatal("stored entry not found")
	}
	got := e.m
	if inverted {
		got = invertMatch(got)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("same-orientation lookup:\n got %+v\nwant %+v", got, m)
	}
	e, inverted, found = c.get("sig", "aaa", "zzz")
	if !found {
		t.Fatal("opposite-orientation lookup missed")
	}
	got = e.m
	if inverted {
		got = invertMatch(got)
	}
	if !reflect.DeepEqual(got, invertMatch(m)) {
		t.Errorf("opposite-orientation lookup:\n got %+v\nwant %+v", got, invertMatch(m))
	}
}

func TestPairCacheSignatureFlush(t *testing.T) {
	c := NewPairCache(0)
	c.put("sig-v1", "a", "b", Match{}, false)
	if _, _, found := c.get("sig-v2", "a", "b"); found {
		t.Error("entry survived a signature mismatch on get")
	}
	c.put("sig-v2", "c", "d", Match{}, true)
	if c.Len() != 1 {
		t.Errorf("Len = %d after signature change, want 1 (old entries flushed)", c.Len())
	}
	if _, _, found := c.get("sig-v2", "a", "b"); found {
		t.Error("stale entry readable under new signature")
	}
}

func TestPairCacheEvictionCap(t *testing.T) {
	c := NewPairCache(2)
	c.put("s", "a", "b", Match{}, false)
	c.put("s", "c", "d", Match{}, false)
	c.put("s", "e", "f", Match{}, false)
	if c.Len() != 2 {
		t.Errorf("Len = %d, want cap 2", c.Len())
	}
	if _, _, found := c.get("s", "e", "f"); !found {
		t.Error("most recent entry was evicted")
	}
}

// Regression: at capacity, refreshing an already-cached pair used to
// evict an unrelated entry — the map size did not grow, so every
// overwrite silently shrank the cache below its bound.
func TestPairCachePutOverwriteDoesNotEvict(t *testing.T) {
	c := NewPairCache(2)
	c.put("s", "a", "b", Match{}, false)
	c.put("s", "c", "d", Match{}, false)
	// Overwrite the first pair at capacity, in both orientations: no
	// eviction, the second pair must survive.
	c.put("s", "b", "a", Match{}, false)
	c.put("s", "a", "b", testMatch(), true)
	if c.Len() != 2 {
		t.Fatalf("Len = %d after overwrites, want 2", c.Len())
	}
	for _, pair := range [][2]string{{"a", "b"}, {"c", "d"}} {
		if _, _, found := c.get("s", pair[0], pair[1]); !found {
			t.Errorf("pair %v evicted by an overwrite of a different key", pair)
		}
	}
	// The overwrite took effect.
	if e, _, _ := c.get("s", "a", "b"); !e.ok {
		t.Error("overwrite did not replace the stored decision")
	}
}

// Golden signature: the string is persisted inside exported cache dumps
// and compared across process restarts, so its exact value is a
// compatibility contract. If this test fails because a parameter was
// added or a default changed, bump the version prefix in Signature —
// do not just update the constant.
func TestParamsSignatureGolden(t *testing.T) {
	const want = "agg-v1;eps=1.5;delta=50;hl=0.35;rdt=0.5;rdist=0.4;maxanch=6;stride=0;" +
		"maxhead=0.5235987755982988;minsup=2;" +
		"kf-v1;hg=0.92;headgate=0.2094395102393195;wc=0.4;wsh=0.3;wwav=0.3;" +
		"hs=0.55;hd=0.12;hf=0.09;hog=8,2,9,1;shape=12,9,0.06;wav=64,60;" +
		"surf=0.0001,120;bins=8;stay=0.75"
	if got := DefaultParams().Signature(); got != want {
		t.Errorf("default signature drifted:\n got %s\nwant %s", got, want)
	}
}

func TestParamsSignatureExcludesObs(t *testing.T) {
	a := DefaultParams()
	b := DefaultParams()
	if paramsSignature(a) != paramsSignature(b) {
		t.Error("identical params produced different signatures")
	}
	b.KF.HD = 0.2
	if paramsSignature(a) == paramsSignature(b) {
		t.Error("changed comparison threshold did not change the signature")
	}
}

func TestComparePairCachedBypassAndNil(t *testing.T) {
	// Empty tracks produce a deterministic no-match decision through the
	// real ComparePair; they exercise the wiring, not the vision stack.
	a := &Track{ID: "a", Hash: "ha"}
	b := &Track{ID: "b", Hash: "hb"}
	p := DefaultParams()

	// Nil cache behaves exactly like ComparePair.
	if _, ok, err := ComparePairCached(0, 1, a, b, p, nil); err != nil || ok {
		t.Fatalf("nil cache: ok=%v err=%v", ok, err)
	}

	cache := NewPairCache(0)
	// Missing hashes bypass the cache.
	if _, ok, err := ComparePairCached(0, 1, &Track{ID: "x"}, b, p, cache); err != nil || ok {
		t.Fatalf("bypass: ok=%v err=%v", ok, err)
	}
	if cache.Len() != 0 {
		t.Errorf("bypassed comparison was cached (%d entries)", cache.Len())
	}

	// Miss populates; a repeat (either orientation) hits with rebound
	// track indices.
	if _, _, err := ComparePairCached(0, 1, a, b, p, cache); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("Len = %d after miss, want 1", cache.Len())
	}
	m, ok, err := ComparePairCached(5, 9, b, a, p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("empty tracks cannot match")
	}
	if m.A != 5 || m.B != 9 {
		t.Errorf("hit did not rebind track indices: got (%d,%d), want (5,9)", m.A, m.B)
	}
}

// Same-fingerprint pairs (a capture uploaded twice produces two tracks
// with equal hashes, so the cache key has lo == hi): the cached decision
// must be indistinguishable from brute recomputation in either argument
// order, including anchor index orientation. With equal hashes get never
// reports inverted, which is exact only because equal fingerprints imply
// bitwise-equal content — pinned here with real extracted tracks.
func TestComparePairCachedSameHash(t *testing.T) {
	if testing.Short() {
		t.Skip("renders key-frames")
	}
	route := [][2]geom.Pt{{geom.P(3, 7.5), geom.P(22, 7.5)}}
	// Deterministic generation + extraction: two builds of the same route
	// and seed are bitwise identical, exactly like a re-uploaded capture.
	a := buildTracks(t, world.Lab2(), route, 41)[0]
	b := buildTracks(t, world.Lab2(), route, 41)[0]
	a.Hash, b.Hash = "same-fp", "same-fp"
	p := DefaultParams()

	brute, bruteOK, err := ComparePair(0, 1, a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPairCache(0)
	// Miss populates and returns the brute decision.
	got, ok, err := ComparePairCached(0, 1, a, b, p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ok != bruteOK || !reflect.DeepEqual(got, brute) {
		t.Errorf("miss path diverged from ComparePair:\n got %+v/%v\nwant %+v/%v", got, ok, brute, bruteOK)
	}
	if cache.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (lo == hi collapses to one key)", cache.Len())
	}
	// Hit, same order.
	got, ok, err = ComparePairCached(0, 1, a, b, p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ok != bruteOK || !reflect.DeepEqual(got, brute) {
		t.Errorf("same-order hit diverged:\n got %+v\nwant %+v", got, brute)
	}
	// Hit, swapped order and fresh track indices: must equal the brute
	// comparison of the swapped arguments, anchors included.
	bruteSwap, swapOK, err := ComparePair(5, 9, b, a, p)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err = ComparePairCached(5, 9, b, a, p, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ok != swapOK || !reflect.DeepEqual(got, bruteSwap) {
		t.Errorf("swapped-order hit diverged:\n got %+v\nwant %+v", got, bruteSwap)
	}
	if cache.Len() != 1 {
		t.Errorf("Len = %d after hits, want 1", cache.Len())
	}
}

func TestPairCacheExportImportRoundTrip(t *testing.T) {
	c := NewPairCache(0)
	m := testMatch()
	c.put("sig", "aaa", "bbb", m, true)
	c.put("sig", "ccc", "bbb", Match{}, false)
	c.put("sig", "ddd", "aaa", testMatch(), true)

	data, err := c.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic encoding: a second export is byte-identical.
	data2, err := c.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("repeated exports differ (non-deterministic encoding)")
	}

	fresh := NewPairCache(0)
	if err := fresh.ImportJSON(data); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != c.Len() {
		t.Fatalf("imported %d entries, want %d", fresh.Len(), c.Len())
	}
	// Every decision survives with orientation and signature intact.
	for _, pair := range [][2]string{{"aaa", "bbb"}, {"bbb", "ccc"}, {"aaa", "ddd"}} {
		want, wantInv, found := c.get("sig", pair[0], pair[1])
		got, gotInv, ok := fresh.get("sig", pair[0], pair[1])
		if !found || !ok {
			t.Fatalf("pair %v lost in round trip", pair)
		}
		if gotInv != wantInv || got.ok != want.ok || !reflect.DeepEqual(got.m, want.m) {
			t.Errorf("pair %v decision changed: got %+v/%v, want %+v/%v", pair, got, gotInv, want, wantInv)
		}
	}
	// The signature rode along: a different-signature lookup misses.
	if _, _, found := fresh.get("other-sig", "aaa", "bbb"); found {
		t.Error("imported cache answered under a different signature")
	}
}

func TestPairCacheExportImportEdgeCases(t *testing.T) {
	// Nil cache exports an empty dump.
	var nilCache *PairCache
	data, err := nilCache.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	empty := NewPairCache(0)
	if err := empty.ImportJSON(data); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("empty dump imported %d entries", empty.Len())
	}
	// Importing into a nil cache and importing junk both error.
	if err := nilCache.ImportJSON(data); err == nil {
		t.Error("import into nil cache succeeded")
	}
	if err := empty.ImportJSON([]byte("{not json")); err == nil {
		t.Error("junk import succeeded")
	}
	// The cache bound wins over the dump size.
	big := NewPairCache(0)
	for i := 0; i < 10; i++ {
		big.put("s", string(rune('a'+i)), "zz", Match{}, false)
	}
	dump, err := big.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	small := NewPairCache(4)
	if err := small.ImportJSON(dump); err != nil {
		t.Fatal(err)
	}
	if small.Len() != 4 {
		t.Errorf("bounded cache imported %d entries, want 4", small.Len())
	}
}
