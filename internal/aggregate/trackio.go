package aggregate

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	"crowdmap/internal/geom"
	"crowdmap/internal/img"
	"crowdmap/internal/keyframe"
	"crowdmap/internal/trajectory"
	"crowdmap/internal/vision/histogram"
	"crowdmap/internal/vision/hog"
	"crowdmap/internal/vision/shape"
	"crowdmap/internal/vision/surf"
	"crowdmap/internal/vision/wavelet"
	"crowdmap/internal/world"
)

// Track artifact serialization: a delta reconstruction persists each
// extracted track through the checkpoint journal so a restarted daemon
// never re-extracts an unchanged capture. The codec stores only primary
// extraction output — the derived structures (the flattened wavelet
// signature and the SURF nearest-neighbor index) are rebuilt on decode by
// the same deterministic constructors keyframe.Extract uses, so a decoded
// track drives decisions bit-identical to the freshly extracted one.
// Gob keeps float64 values exact; gzip keeps the journal entries (which
// retain SRS key-frame pixels for panorama stitching) compact.

// trackArtifact mirrors Track minus run-local state: Quality is stamped
// per run by the quality gate, so it is deliberately not persisted.
type trackArtifact struct {
	ID    string
	Night bool
	Hash  string
	Traj  trajectory.Trajectory
	KFs   []kfArtifact
}

// kfArtifact mirrors keyframe.KeyFrame minus the derived WaveletFlat and
// SURFIndex (rebuilt on decode; surf.Index has unexported internals by
// design).
type kfArtifact struct {
	T         float64
	Image     *img.RGB
	Heading   float64
	LocalPos  geom.Pt
	TruthPose world.Pose
	HOG       hog.Descriptor
	Hist      *histogram.Hist
	Shape     *shape.Descriptor
	Wavelet   *wavelet.Signature
	SURF      []surf.Feature
}

// EncodeTrack serializes one extracted track for journal persistence.
func EncodeTrack(t *Track) ([]byte, error) {
	if t == nil || t.Traj == nil {
		return nil, fmt.Errorf("aggregate: encode nil track")
	}
	art := trackArtifact{
		ID:    t.ID,
		Night: t.Night,
		Hash:  t.Hash,
		Traj:  *t.Traj,
		KFs:   make([]kfArtifact, len(t.KFs)),
	}
	for i, kf := range t.KFs {
		art.KFs[i] = kfArtifact{
			T:         kf.T,
			Image:     kf.Image,
			Heading:   kf.Heading,
			LocalPos:  kf.LocalPos,
			TruthPose: kf.TruthPose,
			HOG:       kf.HOG,
			Hist:      kf.Hist,
			Shape:     kf.Shape,
			Wavelet:   kf.Wavelet,
			SURF:      kf.SURF,
		}
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(&art); err != nil {
		return nil, fmt.Errorf("aggregate: encode track %s: %w", t.ID, err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("aggregate: encode track %s: %w", t.ID, err)
	}
	return buf.Bytes(), nil
}

// DecodeError is the typed failure of DecodeTrack: the artifact bytes
// are truncated, garbled, or otherwise not a valid track artifact.
// Callers match it with errors.As to route corrupt artifacts to the
// drop-and-re-extract repair path (and count them) instead of failing
// the run on a raw gzip/gob error.
type DecodeError struct {
	Err error
}

func (e *DecodeError) Error() string { return "aggregate: decode track: " + e.Err.Error() }
func (e *DecodeError) Unwrap() error { return e.Err }

// DecodeTrack deserializes a persisted track and rebuilds its derived
// structures exactly as extraction does. Track.Quality is zero: the
// caller stamps the current run's gate score. Any failure — at the gzip
// layer, the gob layer, or structural validation — is a *DecodeError;
// corrupted input of any shape returns it rather than panicking (pinned
// by FuzzDecodeTrack).
func DecodeTrack(data []byte) (*Track, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, &DecodeError{Err: err}
	}
	var art trackArtifact
	if err := gob.NewDecoder(zr).Decode(&art); err != nil {
		return nil, &DecodeError{Err: err}
	}
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, &DecodeError{Err: err}
	}
	if err := zr.Close(); err != nil {
		return nil, &DecodeError{Err: err}
	}
	traj := art.Traj
	t := &Track{
		ID:    art.ID,
		Night: art.Night,
		Hash:  art.Hash,
		Traj:  &traj,
		KFs:   make([]*keyframe.KeyFrame, len(art.KFs)),
	}
	for i, a := range art.KFs {
		kf := &keyframe.KeyFrame{
			T:         a.T,
			Image:     a.Image,
			Heading:   a.Heading,
			LocalPos:  a.LocalPos,
			TruthPose: a.TruthPose,
			HOG:       a.HOG,
			Hist:      a.Hist,
			Shape:     a.Shape,
			Wavelet:   a.Wavelet,
			SURF:      a.SURF,
		}
		// Rebuild derived structures with the constructors Extract uses;
		// both are deterministic functions of the primary fields.
		if kf.Wavelet != nil {
			kf.WaveletFlat = kf.Wavelet.Flatten()
		}
		kf.SURFIndex = surf.NewIndex(kf.SURF)
		t.KFs[i] = kf
	}
	return t, nil
}
