// Package aggregate implements CrowdMap's sequence-based user-trajectory
// aggregation (paper Section III-B.I), the system's core contribution:
// matched key-frames act as anchor points proposing candidate translations
// between two trajectories' local frames (the set F of the paper's
// equation 2), and each candidate is verified by the longest-common-
// subsequence metric L over the trajectory point sequences with distance
// tolerance ε and index window δ. Two trajectories merge only when
// S3 = max_{f∈F} L(Ta, f(Tb)) / min(i, j) exceeds the threshold hl — the
// sequence check that single-image anchoring lacks and that Fig. 7(a)
// shows it needs.
//
// The package also owns track persistence (trackio.go): EncodeTrack and
// DecodeTrack are the gob+gzip artifact codec the delta-reconstruction
// journal and the read tier's localization indexes build on — primary
// extraction output is stored, derived structures are rebuilt on decode
// so persisted tracks drive decisions bit-identical to fresh ones.
package aggregate

import (
	"fmt"
	"math"
	"sort"

	"crowdmap/internal/geom"
	"crowdmap/internal/keyframe"
	"crowdmap/internal/mathx"
	"crowdmap/internal/trajectory"
)

// Track couples a dead-reckoned trajectory with its key-frames; it is the
// unit of aggregation.
type Track struct {
	ID   string
	Traj *trajectory.Trajectory
	KFs  []*keyframe.KeyFrame
	// Night records the capture lighting pool (evaluation bookkeeping).
	Night bool
	// Hash is the content fingerprint of the capture this track was
	// extracted from (crowd.Capture.Fingerprint). A non-empty hash lets the
	// pair-comparison cache recognize a track across jobs; empty disables
	// caching for pairs involving this track.
	Hash string
	// Quality is the capture's quality-gate score in (0, 1]; zero means
	// unscored. When anchor support and sequence score tie exactly,
	// aggregation prefers the match whose tracks carry the higher score, so
	// sanitized-but-suspect captures lose ties against pristine ones.
	Quality float64
}

// EffectiveQuality maps the unscored zero value to a perfect score so
// callers that never ran the quality gate keep today's behavior.
func (t *Track) EffectiveQuality() float64 {
	if t.Quality <= 0 {
		return 1
	}
	return t.Quality
}

// Params tunes aggregation.
type Params struct {
	// Epsilon is the ε point-distance tolerance of the L metric, meters.
	Epsilon float64
	// Delta is the δ maximum index difference of the L metric.
	Delta int
	// HL is the S3 acceptance threshold.
	HL float64
	// ResampleDT is the uniform time step the L metric runs on, seconds
	// (used only when ResampleDist is zero).
	ResampleDT float64
	// ResampleDist, when positive, resamples trajectories by traveled
	// distance (meters) instead of time before the L metric. Stationary
	// phases (the SRS spin) then collapse to a single point instead of
	// manufacturing a long fake "common path".
	ResampleDist float64
	// MaxAnchors caps how many anchor translations are LCS-verified per
	// pair (strongest S2 first); 0 means all.
	MaxAnchors int
	// AnchorStride subsamples both key-frame lists during anchor finding
	// (1 = every key-frame). Stride 2 quarters the dominant cost of
	// aggregation at a small recall cost — the knob the paper's Spark
	// deployment turns by adding machines instead.
	AnchorStride int
	// MaxHeadingDiff is the maximum compass-heading difference between two
	// matched key-frames, radians: two frames of the same scene must have
	// been shot facing roughly the same way, so anchors that disagree with
	// the inertial headings are visual aliases and are dropped. This is the
	// visual/inertial cross-fusion at the heart of the system.
	MaxHeadingDiff float64
	// MinAnchorSupport is the minimum number of independent anchors (no
	// shared key-frame on either side) that must agree with a candidate
	// translation before it is LCS-verified. This encodes the paper's
	// "multiple frames over a certain period of time instead of single
	// frame comparison": a single look-alike frame cannot trigger a merge.
	MinAnchorSupport int
	// KF carries the key-frame comparison thresholds.
	KF keyframe.Params
}

// DefaultParams returns the evaluation tuning.
func DefaultParams() Params {
	return Params{
		Epsilon:          1.5,
		Delta:            50,
		HL:               0.35,
		ResampleDT:       0.5,
		ResampleDist:     0.4,
		MaxAnchors:       6,
		MaxHeadingDiff:   mathx.Deg2Rad(30),
		MinAnchorSupport: 2,
		KF:               keyframe.DefaultParams(),
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("aggregate: epsilon must be positive, got %g", p.Epsilon)
	}
	if p.Delta <= 0 {
		return fmt.Errorf("aggregate: delta must be positive, got %d", p.Delta)
	}
	if p.HL <= 0 || p.HL > 1 {
		return fmt.Errorf("aggregate: hl must be in (0, 1], got %g", p.HL)
	}
	if p.ResampleDT <= 0 && p.ResampleDist <= 0 {
		return fmt.Errorf("aggregate: need a positive resample step (time %g, distance %g)", p.ResampleDT, p.ResampleDist)
	}
	return p.KF.Validate()
}

// LCS computes the paper's longest-common-subsequence metric L between two
// point sequences: points pair up when within eps and their indices differ
// by less than delta.
func LCS(a, b []geom.Pt, eps float64, delta int) int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	// Rolling two-row DP.
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			di := i - j
			if di < 0 {
				di = -di
			}
			if di < delta && a[i-1].Dist(b[j-1]) <= eps {
				cur[j] = 1 + prev[j-1]
				continue
			}
			if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// Anchor is one key-frame correspondence between two tracks.
type Anchor struct {
	IA, IB int     // key-frame indices in the two tracks
	S2     float64 // SURF similarity
	// Translation maps track B's local frame onto track A's:
	// posA = posB + Translation.
	Translation geom.Pt
}

// Match is the aggregation decision for a track pair.
type Match struct {
	A, B        int // track indices
	S3          float64
	Translation geom.Pt
	Anchors     []Anchor
	// Support is the number of independent anchors that agreed with the
	// winning translation; higher means a more trustworthy edge.
	Support int
}

// FindAnchors runs the hierarchical key-frame comparison across two tracks
// and returns all accepted correspondences, strongest first. The cross
// product is scored through keyframe.CompareBlock — batched stage 1, then
// SURF for the admitted pairs — which makes the identical decisions the
// per-pair Compare loop did.
func FindAnchors(a, b *Track, p Params) ([]Anchor, error) {
	stride := p.AnchorStride
	if stride < 1 {
		stride = 1
	}
	var akfs, bkfs []*keyframe.KeyFrame
	var ais, bis []int
	for i := 0; i < len(a.KFs); i += stride {
		akfs = append(akfs, a.KFs[i])
		ais = append(ais, i)
	}
	for j := 0; j < len(b.KFs); j += stride {
		bkfs = append(bkfs, b.KFs[j])
		bis = append(bis, j)
	}
	same, s2s, err := keyframe.CompareBlock(akfs, bkfs, p.KF)
	if err != nil {
		return nil, fmt.Errorf("aggregate: comparing %s with %s: %w", a.ID, b.ID, err)
	}
	var anchors []Anchor
	for x, i := range ais {
		ka := a.KFs[i]
		for y, j := range bis {
			if !same[x*len(bkfs)+y] {
				continue
			}
			kb := b.KFs[j]
			if p.MaxHeadingDiff > 0 {
				if d := mathx.AngleDiff(ka.Heading, kb.Heading); d > p.MaxHeadingDiff || d < -p.MaxHeadingDiff {
					continue
				}
			}
			anchors = append(anchors, Anchor{
				IA: i, IB: j, S2: s2s[x*len(bkfs)+y],
				Translation: ka.LocalPos.Sub(kb.LocalPos),
			})
		}
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].S2 > anchors[j].S2 })
	p.KF.Obs.Counter("aggregate.anchors.found").Add(int64(len(anchors)))
	return anchors, nil
}

// ComparePair decides whether two tracks can merge: anchors propose
// translations, the LCS metric scores each, and the best S3 above hl wins.
func ComparePair(ai, bi int, a, b *Track, p Params) (Match, bool, error) {
	if err := p.Validate(); err != nil {
		return Match{}, false, err
	}
	p.KF.Obs.Counter("aggregate.pairs.compared").Inc()
	anchors, err := FindAnchors(a, b, p)
	if err != nil {
		return Match{}, false, err
	}
	m, ok, err := DecideFromAnchors(ai, bi, a, b, anchors, p)
	if ok {
		p.KF.Obs.Counter("aggregate.pairs.matched").Inc()
	}
	return m, ok, err
}

// DecideFromAnchors runs the sequence-verification half of ComparePair on a
// precomputed anchor list, so experiments can reuse the expensive visual
// matching across parameter sweeps.
func DecideFromAnchors(ai, bi int, a, b *Track, anchors []Anchor, p Params) (Match, bool, error) {
	if len(anchors) == 0 {
		return Match{}, false, nil
	}
	ra, err := resampleForLCS(a.Traj, p)
	if err != nil {
		return Match{}, false, err
	}
	rb, err := resampleForLCS(b.Traj, p)
	if err != nil {
		return Match{}, false, err
	}
	pa := ra.Positions()
	pb := rb.Positions()
	minLen := len(pa)
	if len(pb) < minLen {
		minLen = len(pb)
	}
	if minLen == 0 {
		return Match{}, false, nil
	}
	limit := len(anchors)
	if p.MaxAnchors > 0 && limit > p.MaxAnchors {
		limit = p.MaxAnchors
	}
	best := Match{A: ai, B: bi, Anchors: anchors}
	found := false
	for _, an := range anchors[:limit] {
		sup := support(anchors, an, 2*p.Epsilon, a, b)
		if sup < p.MinAnchorSupport {
			continue
		}
		shifted := make([]geom.Pt, len(pb))
		for i, q := range pb {
			shifted[i] = q.Add(an.Translation)
		}
		l := LCS(pa, shifted, p.Epsilon, p.Delta)
		s3 := float64(l) / float64(minLen)
		if s3 > best.S3 || (s3 == best.S3 && sup > best.Support) {
			best.S3 = s3
			best.Translation = an.Translation
			best.Support = sup
			found = true
		}
	}
	if !found || best.S3 <= p.HL {
		return Match{}, false, nil
	}
	return best, true, nil
}

// resampleForLCS prepares a trajectory for the L metric: by distance when
// configured (robust to stationary phases), by time otherwise.
func resampleForLCS(tr *trajectory.Trajectory, p Params) (*trajectory.Trajectory, error) {
	if p.ResampleDist > 0 {
		return tr.ResampleByDistance(p.ResampleDist)
	}
	return tr.Resample(p.ResampleDT)
}

// support counts independent, spatially spread anchors agreeing with the
// candidate translation: each counted anchor must use fresh key-frames AND
// sit at least minAnchorSpread away from every already-counted anchor on
// both tracks. Spread is what makes consensus meaningful — two users
// spinning in two different look-alike rooms produce dozens of mutually
// consistent aliases, but all at one spot; genuine co-walked paths spread
// their agreeing anchors along the corridor.
const minAnchorSpread = 0.8 // meters

func support(anchors []Anchor, cand Anchor, radius float64, a, b *Track) int {
	usedA := make(map[int]bool)
	usedB := make(map[int]bool)
	var posA, posB []geom.Pt
	n := 0
	for _, an := range anchors {
		if an.Translation.Dist(cand.Translation) > radius {
			continue
		}
		if usedA[an.IA] || usedB[an.IB] {
			continue
		}
		pa := a.KFs[an.IA].LocalPos
		pb := b.KFs[an.IB].LocalPos
		spread := true
		for _, q := range posA {
			if q.Dist(pa) < minAnchorSpread {
				spread = false
				break
			}
		}
		if spread {
			for _, q := range posB {
				if q.Dist(pb) < minAnchorSpread {
					spread = false
					break
				}
			}
		}
		if !spread {
			continue
		}
		usedA[an.IA] = true
		usedB[an.IB] = true
		posA = append(posA, pa)
		posB = append(posB, pb)
		n++
	}
	return n
}

// Result is the outcome of aggregating a track set.
type Result struct {
	// Offsets maps track index to the translation placing it in the global
	// frame. Tracks absent from the map could not be placed.
	Offsets map[int]geom.Pt
	// Matches holds every accepted pair decision.
	Matches []Match
	// Rejected holds matches discarded by the loop-consistency check: their
	// translation contradicted the placement implied by stronger edges.
	Rejected []Match
	// Components lists the connected components of the merge graph,
	// largest first, as track index sets.
	Components [][]int
}

// PairComparer computes a merge decision for a pair of tracks; the
// parallel cloud pipeline supplies a distributed implementation, while
// SequentialComparer runs in-process.
type PairComparer func(ai, bi int, a, b *Track, p Params) (Match, bool, error)

// Aggregate merges all tracks: every pair is compared (via cmp, defaulting
// to ComparePair) and accepted matches are assembled into a global frame
// with a robust spanning forest: edges are applied strongest-support
// first through a weighted union-find, and an edge that closes a loop
// inconsistently with the already-established placement (translation
// disagrees by more than 3ε) is rejected — a wrong visual alias cannot
// override the consensus of stronger matches. The largest component
// defines the building's global frame.
func Aggregate(tracks []*Track, p Params, cmp PairComparer) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cmp == nil {
		cmp = ComparePair
	}
	res := &Result{Offsets: make(map[int]geom.Pt)}
	for i := 0; i < len(tracks); i++ {
		for j := i + 1; j < len(tracks); j++ {
			m, ok, err := cmp(i, j, tracks[i], tracks[j], p)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			res.Matches = append(res.Matches, m)
		}
	}
	// Strongest evidence first: anchor support, then sequence score, then
	// — on exact ties only, so ungated corpora are unaffected — the
	// quality-gate score of the match's weaker track. Low-quality
	// (sanitized) captures thereby lose ties against pristine evidence.
	order := make([]int, len(res.Matches))
	for i := range order {
		order[i] = i
	}
	minQ := func(m Match) float64 {
		return math.Min(tracks[m.A].EffectiveQuality(), tracks[m.B].EffectiveQuality())
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := res.Matches[order[x]], res.Matches[order[y]]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if a.S3 != b.S3 {
			return a.S3 > b.S3
		}
		return minQ(a) > minQ(b)
	})
	u := newUnionFind(len(tracks))
	tol := 3 * p.Epsilon
	for _, idx := range order {
		m := res.Matches[idx]
		if !u.union(m.A, m.B, m.Translation, tol) {
			res.Rejected = append(res.Rejected, m)
		}
	}
	// Extract components and per-track offsets relative to each root.
	comps := make(map[int][]int)
	offs := make(map[int]geom.Pt, len(tracks))
	for i := range tracks {
		root, off := u.find(i)
		comps[root] = append(comps[root], i)
		offs[i] = off
	}
	for _, c := range comps {
		res.Components = append(res.Components, c)
	}
	sort.Slice(res.Components, func(i, j int) bool {
		if len(res.Components[i]) != len(res.Components[j]) {
			return len(res.Components[i]) > len(res.Components[j])
		}
		return res.Components[i][0] < res.Components[j][0]
	})
	// Keep only tracks in the largest component: isolated trajectories
	// cannot be placed confidently (the paper drops them as outliers).
	if len(res.Components) > 0 {
		for _, idx := range res.Components[0] {
			res.Offsets[idx] = offs[idx]
		}
	}
	refinePlacement(res, tol)
	return res, nil
}

// refinePlacement runs median-voting refinement over the placed tracks: a
// single high-support but wrong edge can win the greedy spanning phase
// (two identical-looking rooms produce many mutually consistent visual
// aliases), but it stays a minority among a node's edges. Each node
// re-places itself at the median offset implied by its incident matches
// when that consensus clearly outvotes its current placement. Rejected is
// recomputed against the final placement.
func refinePlacement(res *Result, tol float64) {
	if len(res.Offsets) == 0 {
		return
	}
	// Each res.Offsets[idx] update feeds later candidates within the same
	// sweep, so the sweep must visit nodes in a fixed order — Go randomizes
	// map iteration, which made final placements vary run-to-run.
	idxs := make([]int, 0, len(res.Offsets))
	for idx := range res.Offsets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, idx := range idxs {
			var cands []geom.Pt
			for _, m := range res.Matches {
				switch idx {
				case m.A:
					if off, ok := res.Offsets[m.B]; ok {
						cands = append(cands, off.Sub(m.Translation))
					}
				case m.B:
					if off, ok := res.Offsets[m.A]; ok {
						cands = append(cands, off.Add(m.Translation))
					}
				}
			}
			if len(cands) < 2 {
				continue
			}
			xs := make([]float64, len(cands))
			ys := make([]float64, len(cands))
			for i, c := range cands {
				xs[i] = c.X
				ys[i] = c.Y
			}
			med := geom.P(median(xs), median(ys))
			cur := res.Offsets[idx]
			if med.Dist(cur) <= tol {
				continue
			}
			nearMed, nearCur := 0, 0
			var cluster []geom.Pt
			for _, c := range cands {
				if c.Dist(med) <= tol {
					nearMed++
					cluster = append(cluster, c)
				}
				if c.Dist(cur) <= tol {
					nearCur++
				}
			}
			if nearMed > nearCur && len(cluster) > 0 {
				var mean geom.Pt
				for _, c := range cluster {
					mean = mean.Add(c)
				}
				res.Offsets[idx] = mean.Scale(1 / float64(len(cluster)))
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Recompute the rejected set against the final placement.
	res.Rejected = res.Rejected[:0]
	for _, m := range res.Matches {
		offA, okA := res.Offsets[m.A]
		offB, okB := res.Offsets[m.B]
		if !okA || !okB {
			continue
		}
		if offA.Add(m.Translation).Dist(offB) > tol {
			res.Rejected = append(res.Rejected, m)
		}
	}
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// unionFind is a weighted union-find where each element carries its
// translation offset relative to its parent.
type unionFind struct {
	parent []int
	off    []geom.Pt // off[i]: offset of i's origin expressed in parent[i]'s frame
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), off: make([]geom.Pt, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// find returns the root of i and i's offset in the root frame, compressing
// paths as it goes.
func (u *unionFind) find(i int) (int, geom.Pt) {
	if u.parent[i] == i {
		return i, u.off[i]
	}
	root, parentOff := u.find(u.parent[i])
	u.parent[i] = root
	u.off[i] = u.off[i].Add(parentOff)
	return root, u.off[i]
}

// union applies the constraint offset(b) = offset(a) + t. It returns false
// when a and b are already connected and the existing placement disagrees
// with t by more than tol (the edge is inconsistent and must be dropped).
func (u *unionFind) union(a, b int, t geom.Pt, tol float64) bool {
	ra, offA := u.find(a)
	rb, offB := u.find(b)
	if ra == rb {
		return offA.Add(t).Dist(offB) <= tol
	}
	// Attach rb's tree under ra: offset(rb in ra frame) must satisfy
	// offB_new = offA + t, and every member of rb's tree shifts with it.
	u.parent[rb] = ra
	u.off[rb] = offA.Add(t).Sub(offB)
	return true
}

// GlobalTrajectories applies the aggregation offsets, returning the placed
// trajectories in the shared global frame.
func (r *Result) GlobalTrajectories(tracks []*Track) []*trajectory.Trajectory {
	out := make([]*trajectory.Trajectory, 0, len(r.Offsets))
	for idx, off := range r.Offsets {
		out = append(out, tracks[idx].Traj.Translate(off))
	}
	return out
}
