package aggregate

import (
	"math"
	"testing"

	"crowdmap/internal/geom"
	"crowdmap/internal/trajectory"
)

// walkPath builds a trajectory walking the given waypoints at ~1.4 m/s
// with ~0.35 m point spacing, in a local frame shifted so the first
// waypoint sits at -origin... i.e. world = local + origin.
func walkPath(id string, waypoints []geom.Pt, origin geom.Pt) *trajectory.Trajectory {
	tr := &trajectory.Trajectory{ID: id}
	const step = 0.35
	const speed = 1.4
	t := 0.0
	emit := func(p geom.Pt) {
		tr.Points = append(tr.Points, trajectory.Point{T: t, Pos: p.Sub(origin)})
	}
	emit(waypoints[0])
	for i := 1; i < len(waypoints); i++ {
		a, b := waypoints[i-1], waypoints[i]
		d := a.Dist(b)
		n := int(math.Ceil(d / step))
		for s := 1; s <= n; s++ {
			t += d / float64(n) / speed
			emit(a.Add(b.Sub(a).Scale(float64(s) / float64(n))))
		}
	}
	return tr
}

func trajTrack(id string, tr *trajectory.Trajectory) *Track {
	return &Track{ID: id, Traj: tr, Quality: 1}
}

func TestCompareTrajectoryPairSharedCorner(t *testing.T) {
	p := DefaultParams()
	// Two walks along the same L-shaped corridor, local frames offset by
	// (12, -7): the shared corner plus the overlapping legs must align them.
	world := []geom.Pt{geom.P(0, 0), geom.P(10, 0), geom.P(10, 8)}
	a := trajTrack("a", walkPath("a", world, geom.Pt{}))
	offset := geom.P(12, -7)
	b := trajTrack("b", walkPath("b", world, offset))
	m, ok, err := CompareTrajectoryPair(0, 1, a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("co-walked L corridors did not match")
	}
	// posA = posB + Translation, and worldB = localB + offset, so the
	// recovered translation must be the frame offset.
	if m.Translation.Dist(offset) > 1.0 {
		t.Errorf("translation = %v, want ≈%v", m.Translation, offset)
	}
	if m.S3 <= trajHL {
		t.Errorf("S3 = %v, want > %v", m.S3, trajHL)
	}
	if m.Support < trajMinSupport {
		t.Errorf("support = %d, want >= %d", m.Support, trajMinSupport)
	}
	if len(m.Anchors) != 0 {
		t.Errorf("trajectory match carries %d visual anchors, want none", len(m.Anchors))
	}
}

func TestCompareTrajectoryPairRejectsDisjoint(t *testing.T) {
	p := DefaultParams()
	// Two L-walks with the same corner shape in disjoint parts of the
	// world, with incompatible leg directions: no match.
	a := trajTrack("a", walkPath("a", []geom.Pt{geom.P(0, 0), geom.P(10, 0), geom.P(10, 8)}, geom.Pt{}))
	b := trajTrack("b", walkPath("b", []geom.Pt{geom.P(50, 50), geom.P(50, 40), geom.P(42, 40)}, geom.Pt{}))
	if _, ok, err := CompareTrajectoryPair(0, 1, a, b, p); err != nil || ok {
		t.Fatalf("disjoint opposite-heading walks matched (ok=%v err=%v)", ok, err)
	}
	// Straight lines carry no turn anchors at all.
	s1 := trajTrack("s1", walkPath("s1", []geom.Pt{geom.P(0, 0), geom.P(20, 0)}, geom.Pt{}))
	s2 := trajTrack("s2", walkPath("s2", []geom.Pt{geom.P(0, 0), geom.P(20, 0)}, geom.P(1, 1)))
	if _, ok, err := CompareTrajectoryPair(0, 1, s1, s2, p); err != nil || ok {
		t.Fatalf("turn-free straight walks matched (ok=%v err=%v)", ok, err)
	}
}

func TestCompareTrajectoryPairDeterministic(t *testing.T) {
	p := DefaultParams()
	world := []geom.Pt{geom.P(0, 0), geom.P(10, 0), geom.P(10, 8), geom.P(4, 8)}
	a := trajTrack("a", walkPath("a", world, geom.Pt{}))
	b := trajTrack("b", walkPath("b", world, geom.P(3, 9)))
	m1, ok1, err1 := CompareTrajectoryPair(0, 1, a, b, p)
	m2, ok2, err2 := CompareTrajectoryPair(0, 1, a, b, p)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ok1 != ok2 || m1.Translation != m2.Translation || m1.S3 != m2.S3 || m1.Support != m2.Support {
		t.Fatalf("non-deterministic decision: %+v vs %+v", m1, m2)
	}
}
