package aggregate

import (
	"testing"

	"crowdmap/internal/crowd"
	"crowdmap/internal/geom"
	"crowdmap/internal/keyframe"
	"crowdmap/internal/mathx"
	"crowdmap/internal/world"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"epsilon", func(p *Params) { p.Epsilon = 0 }},
		{"delta", func(p *Params) { p.Delta = 0 }},
		{"hl", func(p *Params) { p.HL = 0 }},
		{"resample", func(p *Params) { p.ResampleDT, p.ResampleDist = 0, 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestLCSBasics(t *testing.T) {
	a := []geom.Pt{geom.P(0, 0), geom.P(1, 0), geom.P(2, 0), geom.P(3, 0)}
	if got := LCS(a, a, 0.1, 5); got != 4 {
		t.Errorf("self LCS = %d, want 4", got)
	}
	if got := LCS(a, nil, 0.1, 5); got != 0 {
		t.Errorf("empty LCS = %d", got)
	}
	// Disjoint sequences.
	b := []geom.Pt{geom.P(10, 10), geom.P(11, 10)}
	if got := LCS(a, b, 0.1, 5); got != 0 {
		t.Errorf("disjoint LCS = %d", got)
	}
	// Partial overlap: last two of a equal first two of c, but the index
	// window must allow |i-j| up to 2.
	c := []geom.Pt{geom.P(2, 0), geom.P(3, 0), geom.P(4, 0), geom.P(5, 0)}
	if got := LCS(a, c, 0.1, 5); got != 2 {
		t.Errorf("partial LCS = %d, want 2", got)
	}
	// Tight window suppresses the shifted match entirely: with |i-j| < 1
	// only identical indices can pair, and a[i] never equals c[i].
	if got := LCS(a, c, 0.1, 1); got != 0 {
		t.Errorf("windowed LCS = %d, want 0", got)
	}
}

func TestLCSWindowExactness(t *testing.T) {
	// With delta=1, only i==j pairs can match.
	a := []geom.Pt{geom.P(0, 0), geom.P(1, 0), geom.P(2, 0)}
	b := []geom.Pt{geom.P(0, 0), geom.P(9, 9), geom.P(2, 0)}
	if got := LCS(a, b, 0.1, 1); got != 2 {
		t.Errorf("LCS = %d, want 2 (indices 0 and 2)", got)
	}
}

func TestLCSMonotoneInEpsilonProperty(t *testing.T) {
	rng := mathx.NewRNG(5)
	a := make([]geom.Pt, 30)
	b := make([]geom.Pt, 30)
	for i := range a {
		a[i] = geom.P(rng.Float64()*10, rng.Float64()*10)
		b[i] = geom.P(rng.Float64()*10, rng.Float64()*10)
	}
	prev := 0
	for _, eps := range []float64{0.5, 1, 2, 4, 8, 16} {
		got := LCS(a, b, eps, 30)
		if got < prev {
			t.Fatalf("LCS not monotone in epsilon: %d after %d", got, prev)
		}
		prev = got
	}
}

// buildTracks makes real tracks from captures sharing a corridor.
func buildTracks(t *testing.T, b *world.Building, routes [][2]geom.Pt, seed int64) []*Track {
	t.Helper()
	users, err := crowd.NewPopulation(len(routes), 0, mathx.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := crowd.NewGenerator(b)
	if err != nil {
		t.Fatal(err)
	}
	kp := keyframe.DefaultParams()
	var tracks []*Track
	for i, r := range routes {
		c, err := gen.SWS("agg", users[i], r[0], r[1], mathx.NewRNG(seed+int64(i)*7+1))
		if err != nil {
			t.Fatal(err)
		}
		kfs, traj, err := keyframe.Extract(c, kp)
		if err != nil {
			t.Fatal(err)
		}
		tracks = append(tracks, &Track{ID: c.ID, Traj: traj, KFs: kfs})
	}
	return tracks
}

// truthOffset computes the ground-truth translation that places track B's
// local frame into track A's, using the first key-frame truth poses.
func truthOffset(a, b *Track) geom.Pt {
	// offset X = truth - local (mean over key-frames), translation A←B is
	// offsetA applied inversely: posB_in_A = posB_local + (offB - offA).
	mean := func(tr *Track) geom.Pt {
		var s geom.Pt
		for _, kf := range tr.KFs {
			s = s.Add(kf.TruthPose.Pos.Sub(kf.LocalPos))
		}
		return s.Scale(1 / float64(len(tr.KFs)))
	}
	return mean(b).Sub(mean(a))
}

func TestComparePairOverlappingTracksMerge(t *testing.T) {
	b := world.Lab2()
	tracks := buildTracks(t, b, [][2]geom.Pt{
		{geom.P(3, 7.5), geom.P(22, 7.5)},
		{geom.P(5, 7.3), geom.P(24, 7.3)},
	}, 41)
	p := DefaultParams()
	m, ok, err := ComparePair(0, 1, tracks[0], tracks[1], p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("overlapping co-directional tracks failed to merge")
	}
	want := truthOffset(tracks[0], tracks[1])
	if m.Translation.Dist(want) > 2.5 {
		t.Errorf("merge translation %v, truth %v (err %.2f m)",
			m.Translation, want, m.Translation.Dist(want))
	}
	if m.S3 <= p.HL {
		t.Errorf("S3 = %v should exceed hl", m.S3)
	}
}

func TestComparePairDisjointTracksReject(t *testing.T) {
	b := world.Lab1()
	// Bottom corridor vs top corridor: different rooms, different walls.
	tracks := buildTracks(t, b, [][2]geom.Pt{
		{geom.P(4, 7.2), geom.P(18, 7.2)},
		{geom.P(4, 20.8), geom.P(18, 20.8)},
	}, 43)
	m, ok, err := ComparePair(0, 1, tracks[0], tracks[1], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("disjoint tracks merged with S3 = %v, translation %v", m.S3, m.Translation)
	}
}

func TestAggregateThreeTracks(t *testing.T) {
	b := world.Lab2()
	tracks := buildTracks(t, b, [][2]geom.Pt{
		{geom.P(3, 7.5), geom.P(20, 7.5)},
		{geom.P(5, 7.4), geom.P(22, 7.4)},
		{geom.P(14, 7.6), geom.P(32, 7.6)},
	}, 47)
	res, err := Aggregate(tracks, DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) == 0 || len(res.Components[0]) < 2 {
		t.Fatalf("aggregation produced no multi-track component: %v", res.Components)
	}
	if len(res.Offsets) != len(res.Components[0]) {
		t.Errorf("offsets for %d tracks, largest component has %d",
			len(res.Offsets), len(res.Components[0]))
	}
	global := res.GlobalTrajectories(tracks)
	if len(global) != len(res.Offsets) {
		t.Fatal("global trajectory count mismatch")
	}
	// Check pairwise consistency: for each matched pair, the relative
	// offset must agree with the match translation.
	for _, m := range res.Matches {
		offA, okA := res.Offsets[m.A]
		offB, okB := res.Offsets[m.B]
		if !okA || !okB {
			continue
		}
		rel := offB.Sub(offA)
		if rel.Dist(m.Translation) > 3.0 {
			t.Errorf("pair (%d,%d): BFS offset %v vs match translation %v",
				m.A, m.B, rel, m.Translation)
		}
	}
}

func TestAggregateCustomComparer(t *testing.T) {
	// A stub comparer lets us test the graph logic without rendering.
	tracks := []*Track{{ID: "a"}, {ID: "b"}, {ID: "c"}, {ID: "d"}}
	cmp := func(ai, bi int, a, b *Track, p Params) (Match, bool, error) {
		// a-b and b-c merge; d is isolated.
		if (ai == 0 && bi == 1) || (ai == 1 && bi == 2) {
			return Match{A: ai, B: bi, S3: 0.9, Translation: geom.P(1, 0)}, true, nil
		}
		return Match{}, false, nil
	}
	res, err := Aggregate(tracks, DefaultParams(), cmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components[0]) != 3 {
		t.Fatalf("largest component = %v", res.Components[0])
	}
	if _, ok := res.Offsets[3]; ok {
		t.Error("isolated track should be dropped from offsets")
	}
	// Chain: offset(a)=0, offset(b)=(1,0), offset(c)=(2,0).
	if res.Offsets[1].Dist(geom.P(1, 0)) > 1e-9 || res.Offsets[2].Dist(geom.P(2, 0)) > 1e-9 {
		t.Errorf("chained offsets wrong: %v", res.Offsets)
	}
}
