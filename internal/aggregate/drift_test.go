package aggregate

import (
	"math"
	"testing"

	"crowdmap/internal/geom"
	"crowdmap/internal/keyframe"
	"crowdmap/internal/trajectory"
	"crowdmap/internal/world"
)

// driftTrack builds a track whose trajectory is a straight truth walk plus
// a linear drift, with key-frames every second carrying the drifted local
// positions and true poses.
func driftTrack(id string, start geom.Pt, driftPerSec geom.Pt, seconds int) *Track {
	tr := &Track{ID: id, Traj: &trajectory.Trajectory{ID: id}}
	for i := 0; i <= seconds; i++ {
		t := float64(i)
		truth := start.Add(geom.P(t, 0)) // walk east 1 m/s
		drift := driftPerSec.Scale(t)
		local := truth.Add(drift) // local frame coincides with global here
		tr.Traj.Points = append(tr.Traj.Points, trajectory.Point{T: t, Pos: local})
		tr.KFs = append(tr.KFs, &keyframe.KeyFrame{
			T:        t,
			LocalPos: local,
			TruthPose: world.Pose{
				Pos: truth,
			},
		})
	}
	return tr
}

func TestFitLinearDrift(t *testing.T) {
	var ps []driftPin
	for i := 0; i <= 10; i++ {
		tt := float64(i)
		ps = append(ps, driftPin{t: tt, residual: geom.P(0.5+0.1*tt, -0.05*tt)})
	}
	corr, ok := fitLinearDrift(ps)
	if !ok {
		t.Fatal("fit failed")
	}
	got := corr(6)
	want := geom.P(0.5+0.6, -0.3)
	if got.Dist(want) > 1e-9 {
		t.Errorf("correction(6) = %v, want %v", got, want)
	}
	// Too few pins.
	if _, ok := fitLinearDrift(ps[:2]); ok {
		t.Error("2 pins should not fit")
	}
	// Too short a baseline.
	short := []driftPin{{t: 0}, {t: 1}, {t: 2}}
	if _, ok := fitLinearDrift(short); ok {
		t.Error("sub-5s baseline should not fit")
	}
}

func TestDriftCorrectedRecoversLinearDrift(t *testing.T) {
	// Track 0 is drift-free truth; track 1 drifts 0.08 m/s north. Anchors
	// pin track 1's key-frames to track 0's positions at matching times.
	a := driftTrack("ref", geom.P(0, 0), geom.Pt{}, 20)
	b := driftTrack("drifty", geom.P(0, 0), geom.P(0, 0.08), 20)
	tracks := []*Track{a, b}
	res := &Result{
		Offsets: map[int]geom.Pt{0: {}, 1: {}},
	}
	m := Match{A: 0, B: 1, S3: 1, Translation: geom.Pt{}}
	for i := 0; i <= 20; i += 2 {
		m.Anchors = append(m.Anchors, Anchor{IA: i, IB: i})
	}
	res.Matches = []Match{m}
	out := res.DriftCorrected(tracks, 1.5)
	if len(out) != 2 {
		t.Fatalf("got %d trajectories", len(out))
	}
	var drifty *trajectory.Trajectory
	for _, tr := range out {
		if tr.ID == "drifty" {
			drifty = tr
		}
	}
	if drifty == nil {
		t.Fatal("drifty track missing")
	}
	// After correction, the end of the drifty track should be near the
	// truth end (20, 0); before correction it ended at (20, 1.6).
	end := drifty.Points[len(drifty.Points)-1].Pos
	if math.Abs(end.Y) > 0.3 {
		t.Errorf("corrected end Y = %.2f, want ≈0 (uncorrected 1.6)", end.Y)
	}
}

func TestDriftCorrectedFallsBackWithoutPins(t *testing.T) {
	a := driftTrack("only", geom.P(3, 4), geom.P(0, 0.1), 10)
	res := &Result{Offsets: map[int]geom.Pt{0: geom.P(1, 1)}}
	out := res.DriftCorrected([]*Track{a}, 1.5)
	if len(out) != 1 {
		t.Fatalf("got %d trajectories", len(out))
	}
	// Plain translation applied, drift untouched.
	want := a.Traj.Points[0].Pos.Add(geom.P(1, 1))
	if out[0].Points[0].Pos.Dist(want) > 1e-9 {
		t.Errorf("fallback start = %v, want %v", out[0].Points[0].Pos, want)
	}
}
