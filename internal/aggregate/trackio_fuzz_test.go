package aggregate

import (
	"errors"
	"testing"

	"crowdmap/internal/keyframe"
	"crowdmap/internal/trajectory"
	"crowdmap/internal/vision/wavelet"
)

// fuzzSeedTrack is a small but structurally complete artifact: a
// trajectory plus one key-frame carrying a wavelet signature, so the
// decode path that rebuilds derived structures is inside the fuzzed
// surface.
func fuzzSeedTrack(tb testing.TB) []byte {
	tb.Helper()
	data, err := EncodeTrack(&Track{
		ID:   "seed",
		Hash: "seed-hash",
		Traj: &trajectory.Trajectory{},
		KFs: []*keyframe.KeyFrame{{
			T:       1.5,
			Heading: 0.25,
			Wavelet: &wavelet.Signature{Size: 8, Average: 0.5, Coeffs: map[int]int8{3: 1, 9: -1}},
		}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzDecodeTrack pins the corrupted-artifact contract: DecodeTrack
// never panics, and every failure is the typed *DecodeError the delta
// path's drop-and-re-extract repair matches on. Seeds cover a valid
// artifact, truncations at both codec layers, a bit flip, and garbage
// that is not gzip at all.
func FuzzDecodeTrack(f *testing.F) {
	valid := fuzzSeedTrack(f)
	f.Add(valid)
	f.Add(valid[:1])                         // not even a gzip header
	f.Add(valid[:len(valid)/2])              // truncated mid-stream
	f.Add(valid[:len(valid)-1])              // missing the gzip trailer
	f.Add(append([]byte(nil), valid[2:]...)) // header sheared off
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("\x1f\x8b\x08")) // gzip magic, empty stream
	f.Add([]byte("PK\x03\x04 definitely not a track artifact"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrack(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode failure has type %T (%v), want *DecodeError", err, err)
			}
			return
		}
		if tr == nil || tr.Traj == nil {
			t.Fatal("nil track or trajectory with nil error")
		}
		for i, kf := range tr.KFs {
			if kf == nil {
				t.Fatalf("key-frame %d is nil with nil error", i)
			}
			if kf.SURFIndex == nil {
				t.Fatalf("key-frame %d decoded without a rebuilt SURF index", i)
			}
		}
	})
}

// TestDecodeTrackCorruptInputsTyped is the non-fuzz pin of the same
// contract, so the typed-error guarantee is enforced even in runs that
// skip fuzz targets.
func TestDecodeTrackCorruptInputsTyped(t *testing.T) {
	valid := fuzzSeedTrack(t)
	// Sanity: the seed round-trips.
	tr, err := DecodeTrack(valid)
	if err != nil || tr.ID != "seed" || len(tr.KFs) != 1 {
		t.Fatalf("valid artifact failed: %+v, %v", tr, err)
	}
	if tr.KFs[0].WaveletFlat == nil || tr.KFs[0].SURFIndex == nil {
		t.Fatal("derived structures not rebuilt on decode")
	}
	corrupt := [][]byte{
		{}, valid[:3], valid[:len(valid)/2], []byte("garbage"),
	}
	mut := append([]byte(nil), valid...)
	mut[len(mut)-2] ^= 0xFF
	corrupt = append(corrupt, mut)
	for i, data := range corrupt {
		_, err := DecodeTrack(data)
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("corrupt input %d: error %v, want *DecodeError", i, err)
		}
	}
}
