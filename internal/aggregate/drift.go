package aggregate

import (
	"sort"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/trajectory"
)

// DriftCorrected returns the placed tracks' trajectories in the global
// frame with per-track drift calibration applied — the paper's "process
// multiple continuous key-frames to calibrate the drift error residing in
// the trajectories". Dead reckoning accumulates error roughly linearly in
// time (gyro bias, step-length mismatch); every placement-consistent
// anchor pins one trajectory instant to another track's independent
// estimate of the same place, and a least-squares linear-in-time
// correction is fitted per track from those pins.
//
// eps bounds the residual an anchor may have against the final placement
// before it is considered an alias and ignored. Tracks with fewer than
// three usable pins (or a pin time-span under 5 s) fall back to the plain
// translated trajectory.
func (r *Result) DriftCorrected(tracks []*Track, eps float64) []*trajectory.Trajectory {
	pins := make(map[int][]driftPin)
	addPin := func(trackIdx int, kf int, target geom.Pt) {
		tr := tracks[trackIdx]
		if kf < 0 || kf >= len(tr.KFs) {
			return
		}
		k := tr.KFs[kf]
		self := k.LocalPos.Add(r.Offsets[trackIdx])
		res := target.Sub(self)
		if res.Norm() > 2*eps {
			return // alias or gross outlier: not evidence of smooth drift
		}
		pins[trackIdx] = append(pins[trackIdx], driftPin{t: k.T, residual: res})
	}
	for _, m := range r.Matches {
		offA, okA := r.Offsets[m.A]
		offB, okB := r.Offsets[m.B]
		if !okA || !okB {
			continue
		}
		// Skip matches whose translation contradicts the placement (the
		// same rule the placement refinement applies).
		if offA.Add(m.Translation).Dist(offB) > 3*eps {
			continue
		}
		for _, an := range m.Anchors {
			if an.IA < 0 || an.IA >= len(tracks[m.A].KFs) ||
				an.IB < 0 || an.IB >= len(tracks[m.B].KFs) {
				continue
			}
			ka := tracks[m.A].KFs[an.IA]
			kb := tracks[m.B].KFs[an.IB]
			// Each side pins the other: the matched frames depict the same
			// place, so their global positions should coincide.
			addPin(m.A, an.IA, kb.LocalPos.Add(offB))
			addPin(m.B, an.IB, ka.LocalPos.Add(offA))
		}
	}
	out := make([]*trajectory.Trajectory, 0, len(r.Offsets))
	idxs := make([]int, 0, len(r.Offsets))
	for idx := range r.Offsets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		base := tracks[idx].Traj.Translate(r.Offsets[idx])
		ps := pins[idx]
		corr, ok := fitLinearDrift(ps)
		if !ok {
			out = append(out, base)
			continue
		}
		fixed := &trajectory.Trajectory{ID: base.ID, Points: make([]trajectory.Point, len(base.Points))}
		for i, p := range base.Points {
			fixed.Points[i] = trajectory.Point{T: p.T, Pos: p.Pos.Add(corr(p.T))}
		}
		out = append(out, fixed)
	}
	return out
}

// driftPin anchors one trajectory instant to an independent estimate of
// the same place.
type driftPin struct {
	t        float64
	residual geom.Pt
}

// fitLinearDrift fits residual(t) ≈ a + b·t per axis by least squares.
func fitLinearDrift(ps []driftPin) (func(t float64) geom.Pt, bool) {
	if len(ps) < 3 {
		return nil, false
	}
	tmin, tmax := ps[0].t, ps[0].t
	for _, p := range ps {
		if p.t < tmin {
			tmin = p.t
		}
		if p.t > tmax {
			tmax = p.t
		}
	}
	if tmax-tmin < 5 {
		return nil, false // too short a baseline to separate offset from drift
	}
	a := mathx.NewMat(len(ps), 2)
	bx := make([]float64, len(ps))
	by := make([]float64, len(ps))
	for i, p := range ps {
		a.Set(i, 0, 1)
		a.Set(i, 1, p.t-tmin)
		bx[i] = p.residual.X
		by[i] = p.residual.Y
	}
	cx, errX := mathx.SolveLeastSquares(a, bx)
	cy, errY := mathx.SolveLeastSquares(a, by)
	if errX != nil || errY != nil {
		return nil, false
	}
	return func(t float64) geom.Pt {
		dt := t - tmin
		return geom.P(cx[0]+cx[1]*dt, cy[0]+cy[1]*dt)
	}, true
}
