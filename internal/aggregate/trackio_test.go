package aggregate

import (
	"reflect"
	"testing"

	"crowdmap/internal/geom"
	"crowdmap/internal/world"
)

// TestTrackCodecRoundTrip pins the journal-persistence contract: a
// decoded track must be indistinguishable from the freshly extracted one
// — derived structures (flattened wavelet, SURF index) included — except
// for Quality, which is deliberately not persisted.
func TestTrackCodecRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("renders key-frames")
	}
	tr := buildTracks(t, world.Lab2(), [][2]geom.Pt{{geom.P(3, 7.5), geom.P(22, 7.5)}}, 41)[0]
	tr.Hash = "fp-roundtrip"
	tr.Night = true
	tr.Quality = 0.83

	data, err := EncodeTrack(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Quality != 0 {
		t.Errorf("Quality = %g persisted, want 0 (stamped per run)", got.Quality)
	}
	want := *tr
	want.Quality = 0
	if got.ID != want.ID || got.Night != want.Night || got.Hash != want.Hash {
		t.Errorf("header fields changed: got %q/%v/%q", got.ID, got.Night, got.Hash)
	}
	if !reflect.DeepEqual(got.Traj, want.Traj) {
		t.Error("trajectory changed in round trip")
	}
	if len(got.KFs) != len(want.KFs) {
		t.Fatalf("key-frame count %d, want %d", len(got.KFs), len(want.KFs))
	}
	for i := range want.KFs {
		if !reflect.DeepEqual(got.KFs[i], want.KFs[i]) {
			t.Errorf("key-frame %d changed in round trip (derived structures included)", i)
		}
	}
	// Encode→decode is idempotent: a re-persisted decoded track decodes to
	// the same value. (The bytes themselves may differ — gob serializes
	// maps in randomized order — which is fine: the journal keys artifacts
	// by fingerprint, never by payload bytes.)
	data2, err := EncodeTrack(got)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeTrack(data2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Error("second decode diverged from the first")
	}
}

func TestTrackCodecErrors(t *testing.T) {
	if _, err := EncodeTrack(nil); err == nil {
		t.Error("encoding a nil track succeeded")
	}
	if _, err := EncodeTrack(&Track{ID: "x"}); err == nil {
		t.Error("encoding a track without a trajectory succeeded")
	}
	if _, err := DecodeTrack([]byte("not gzip")); err == nil {
		t.Error("decoding junk succeeded")
	}
}
