package aggregate

import (
	"math"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/trajectory"
)

// Trajectory-only pair comparison, the inertial counterpart of
// ComparePair for tracks that carry no key-frames (trajectory mode, and
// hybrid-mode captures whose video failed the quality gate). The
// CrowdInside observation is that dead-reckoned walks alone carry enough
// structure to align: corridors force users through the same corners, so
// sustained heading changes (trajectory.Turns) play the role visual
// anchors play in the vision pipeline. Compass headings give all local
// frames a shared orientation, which keeps alignment translation-only —
// the same assumption the visual anchor search already makes.
//
// The decision mirrors DecideFromAnchors: every heading-compatible turn
// pair proposes a translation, agreeing independent turn pairs provide
// support, and the LCS sequence metric (the paper's S3) verifies the
// winner. Tuning lives in package constants rather than Params fields so
// the pair-cache parameter signature — which the vision path pins — is
// untouched; trajectory decisions are never cached.
const (
	// trajTurnWindowM is the heading-averaging window on each side of a
	// candidate turn, meters of arc length.
	trajTurnWindowM = 1.2
	// trajTurnAngle is the minimum sustained heading change for a turn
	// anchor, radians. Hallway corners are ~90°; 45° keeps doorway jinks
	// while rejecting dead-reckoning wobble.
	trajTurnAngle = math.Pi / 4
	// trajTurnSep is the minimum arc length between detected turns, meters.
	trajTurnSep = 1.5
	// trajMinSupport is the minimum number of agreeing turn pairs behind an
	// accepted translation. One corner shared by two L-shaped walks is
	// legitimate evidence, so the floor is 1 — the LCS still has to agree.
	trajMinSupport = 1
	// trajHL is the S3 acceptance floor for trajectory-only merges. It is
	// deliberately above the default vision HL (0.35): without visual
	// confirmation the sequence overlap alone carries the decision.
	trajHL = 0.45
	// trajFeatureStep is the fallback distance-resampling step for turn
	// detection when the configuration resamples by time, meters.
	trajFeatureStep = 0.4
)

// trajTurns detects the turn anchors of one track on a distance-resampled
// copy, so the detection window spans a consistent length of path
// regardless of walking speed.
func trajTurns(tr *trajectory.Trajectory, p Params) ([]trajectory.Turn, error) {
	step := p.ResampleDist
	if step <= 0 {
		step = trajFeatureStep
	}
	r, err := tr.ResampleByDistance(step)
	if err != nil {
		return nil, err
	}
	window := int(math.Round(trajTurnWindowM / step))
	if window < 1 {
		window = 1
	}
	return r.Turns(window, trajTurnAngle, trajTurnSep), nil
}

// trajTurnSupport counts independent turn pairs agreeing with the
// candidate translation. Turns on one track are already at least
// trajTurnSep apart, so freshness of the turn indices implies spatial
// spread.
func trajTurnSupport(cands []trajCand, t geom.Pt, radius float64) int {
	usedA := make(map[int]bool)
	usedB := make(map[int]bool)
	n := 0
	for _, c := range cands {
		if c.t.Dist(t) > radius {
			continue
		}
		if usedA[c.ia] || usedB[c.ib] {
			continue
		}
		usedA[c.ia] = true
		usedB[c.ib] = true
		n++
	}
	return n
}

// trajCand is one candidate translation: turn ia of track A matched to
// turn ib of track B.
type trajCand struct {
	ia, ib int
	t      geom.Pt
}

// CompareTrajectoryPair decides whether two tracks can merge on their
// dead-reckoned trajectories alone. It is a PairComparer, so trajectory
// mode feeds it to the same union-find aggregation the vision comparer
// drives; hybrid mode uses it to fold key-frame-less tracks into an
// already-placed vision graph. The returned match carries no anchors —
// downstream drift correction simply finds no key-frame pins and falls
// back to the plain translated trajectory.
func CompareTrajectoryPair(ai, bi int, a, b *Track, p Params) (Match, bool, error) {
	if err := p.Validate(); err != nil {
		return Match{}, false, err
	}
	p.KF.Obs.Counter("aggregate.traj.pairs.compared").Inc()
	ta, err := trajTurns(a.Traj, p)
	if err != nil {
		return Match{}, false, err
	}
	tb, err := trajTurns(b.Traj, p)
	if err != nil {
		return Match{}, false, err
	}
	if len(ta) == 0 || len(tb) == 0 {
		return Match{}, false, nil
	}
	// Candidate translations from heading-compatible turn pairs: the same
	// corner must be approached and left in the same absolute directions.
	var cands []trajCand
	for i, ua := range ta {
		for j, ub := range tb {
			if p.MaxHeadingDiff > 0 {
				if d := mathx.AngleDiff(ua.In, ub.In); d > p.MaxHeadingDiff || d < -p.MaxHeadingDiff {
					continue
				}
				if d := mathx.AngleDiff(ua.Out, ub.Out); d > p.MaxHeadingDiff || d < -p.MaxHeadingDiff {
					continue
				}
			}
			cands = append(cands, trajCand{ia: i, ib: j, t: ua.Pos.Sub(ub.Pos)})
		}
	}
	if len(cands) == 0 {
		return Match{}, false, nil
	}
	ra, err := resampleForLCS(a.Traj, p)
	if err != nil {
		return Match{}, false, err
	}
	rb, err := resampleForLCS(b.Traj, p)
	if err != nil {
		return Match{}, false, err
	}
	pa := ra.Positions()
	pb := rb.Positions()
	minLen := len(pa)
	if len(pb) < minLen {
		minLen = len(pb)
	}
	if minLen == 0 {
		return Match{}, false, nil
	}
	hl := p.HL
	if hl < trajHL {
		hl = trajHL
	}
	best := Match{A: ai, B: bi}
	found := false
	for _, c := range cands {
		sup := trajTurnSupport(cands, c.t, 2*p.Epsilon)
		if sup < trajMinSupport {
			continue
		}
		shifted := make([]geom.Pt, len(pb))
		for i, q := range pb {
			shifted[i] = q.Add(c.t)
		}
		l := LCS(pa, shifted, p.Epsilon, p.Delta)
		s3 := float64(l) / float64(minLen)
		if s3 > best.S3 || (s3 == best.S3 && sup > best.Support) {
			best.S3 = s3
			best.Translation = c.t
			best.Support = sup
			found = true
		}
	}
	if !found || best.S3 <= hl {
		return Match{}, false, nil
	}
	p.KF.Obs.Counter("aggregate.traj.pairs.matched").Inc()
	return best, true, nil
}
