package geom

import "math"

// Polygon is a simple polygon given by its vertices in order (either
// winding). The closing edge from the last vertex back to the first is
// implicit.
type Polygon struct {
	Vertices []Pt
}

// NewPolygon copies the vertex slice into a Polygon.
func NewPolygon(vs []Pt) Polygon {
	return Polygon{Vertices: append([]Pt(nil), vs...)}
}

// Area returns the unsigned polygon area via the shoelace formula.
func (pg Polygon) Area() float64 {
	return math.Abs(pg.SignedArea())
}

// SignedArea returns the signed area: positive for counterclockwise winding.
func (pg Polygon) SignedArea() float64 {
	n := len(pg.Vertices)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		s += a.Cross(b)
	}
	return s / 2
}

// Perimeter returns the total boundary length.
func (pg Polygon) Perimeter() float64 {
	n := len(pg.Vertices)
	if n < 2 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += pg.Vertices[i].Dist(pg.Vertices[(i+1)%n])
	}
	return s
}

// Centroid returns the area centroid of the polygon. Degenerate polygons
// fall back to the vertex mean.
func (pg Polygon) Centroid() Pt {
	n := len(pg.Vertices)
	if n == 0 {
		return Pt{}
	}
	a := pg.SignedArea()
	if math.Abs(a) < 1e-12 {
		var c Pt
		for _, v := range pg.Vertices {
			c = c.Add(v)
		}
		return c.Scale(1 / float64(n))
	}
	var cx, cy float64
	for i := 0; i < n; i++ {
		p := pg.Vertices[i]
		q := pg.Vertices[(i+1)%n]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	f := 1 / (6 * a)
	return Pt{cx * f, cy * f}
}

// Contains reports whether p lies strictly inside the polygon, using the
// even-odd ray-casting rule. Boundary points may report either value.
func (pg Polygon) Contains(p Pt) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xAtY := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xAtY {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Bounds returns the axis-aligned bounding rectangle. Panics when empty.
func (pg Polygon) Bounds() Rect { return BoundingRect(pg.Vertices) }

// Edges returns all boundary segments in order.
func (pg Polygon) Edges() []Seg {
	n := len(pg.Vertices)
	if n < 2 {
		return nil
	}
	out := make([]Seg, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Seg{pg.Vertices[i], pg.Vertices[(i+1)%n]})
	}
	return out
}

// Translate returns a copy of the polygon shifted by d.
func (pg Polygon) Translate(d Pt) Polygon {
	out := make([]Pt, len(pg.Vertices))
	for i, v := range pg.Vertices {
		out[i] = v.Add(d)
	}
	return Polygon{Vertices: out}
}

// RotateAbout returns a copy rotated by theta radians about center.
func (pg Polygon) RotateAbout(center Pt, theta float64) Polygon {
	out := make([]Pt, len(pg.Vertices))
	for i, v := range pg.Vertices {
		out[i] = v.Sub(center).Rotate(theta).Add(center)
	}
	return Polygon{Vertices: out}
}

// ConvexHull returns the convex hull of the points in counterclockwise
// order using Andrew's monotone chain. Fewer than three distinct points
// return the input (deduplicated, sorted).
func ConvexHull(pts []Pt) []Pt {
	n := len(pts)
	if n < 3 {
		return append([]Pt(nil), pts...)
	}
	cp := append([]Pt(nil), pts...)
	// Sort by x then y (insertion-free: use simple sort via sort.Slice is
	// avoided to keep geom dependency-light; a small hand sort suffices).
	sortPts(cp)
	hull := make([]Pt, 0, 2*n)
	// Lower hull.
	for _, p := range cp {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(cp) - 2; i >= 0; i-- {
		p := cp[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

func sortPts(ps []Pt) {
	// Heapsort-free simple shell sort; n is small in all call sites but the
	// complexity is still O(n log² n)-ish and allocation-free.
	for gap := len(ps) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(ps); i++ {
			v := ps[i]
			j := i
			for ; j >= gap && ptLess(v, ps[j-gap]); j -= gap {
				ps[j] = ps[j-gap]
			}
			ps[j] = v
		}
	}
}

func ptLess(a, b Pt) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// IntersectionArea estimates the overlap area of two polygons by rasterizing
// both onto a grid with the given cell size. It is used by evaluation
// metrics (precision/recall of hallway shapes), where an approximate but
// shape-agnostic measure is preferable to exact polygon clipping of possibly
// non-convex, multi-part shapes.
func IntersectionArea(a, b Polygon, cell float64) float64 {
	if len(a.Vertices) < 3 || len(b.Vertices) < 3 || cell <= 0 {
		return 0
	}
	bb, ok := boundsIntersect(a.Bounds(), b.Bounds())
	if !ok {
		return 0
	}
	var count int
	for y := bb.Min.Y + cell/2; y < bb.Max.Y; y += cell {
		for x := bb.Min.X + cell/2; x < bb.Max.X; x += cell {
			p := Pt{x, y}
			if a.Contains(p) && b.Contains(p) {
				count++
			}
		}
	}
	return float64(count) * cell * cell
}

func boundsIntersect(r, q Rect) (Rect, bool) { return r.Intersection(q) }

// Transform is a 2-D rigid (plus optional uniform scale) transform:
// x' = s·R(θ)·x + t.
type Transform struct {
	Scale float64 // uniform scale, 1 for rigid
	Theta float64 // rotation, radians CCW
	T     Pt      // translation
}

// Identity returns the identity transform.
func Identity() Transform { return Transform{Scale: 1} }

// Apply maps a point through the transform.
func (tr Transform) Apply(p Pt) Pt {
	return p.Rotate(tr.Theta).Scale(tr.Scale).Add(tr.T)
}

// ApplyAll maps a point slice through the transform.
func (tr Transform) ApplyAll(ps []Pt) []Pt {
	out := make([]Pt, len(ps))
	for i, p := range ps {
		out[i] = tr.Apply(p)
	}
	return out
}

// Compose returns the transform equivalent to applying tr first and then u.
func (tr Transform) Compose(u Transform) Transform {
	return Transform{
		Scale: tr.Scale * u.Scale,
		Theta: tr.Theta + u.Theta,
		T:     u.Apply(tr.T),
	}
}

// Invert returns the inverse transform. Scale must be non-zero.
func (tr Transform) Invert() Transform {
	inv := Transform{Scale: 1 / tr.Scale, Theta: -tr.Theta}
	inv.T = tr.T.Scale(-1).Rotate(-tr.Theta).Scale(1 / tr.Scale)
	return inv
}

// FitRigid estimates the rigid transform (rotation + translation, no scale)
// mapping src points onto dst points in the least-squares sense (a 2-D
// Procrustes/Kabsch fit). The slices must be equal length and non-empty.
func FitRigid(src, dst []Pt) (Transform, bool) {
	if len(src) != len(dst) || len(src) == 0 {
		return Identity(), false
	}
	var cs, cd Pt
	for i := range src {
		cs = cs.Add(src[i])
		cd = cd.Add(dst[i])
	}
	n := float64(len(src))
	cs = cs.Scale(1 / n)
	cd = cd.Scale(1 / n)
	var sxx, sxy float64 // Σ cross terms for rotation
	for i := range src {
		a := src[i].Sub(cs)
		b := dst[i].Sub(cd)
		sxx += a.Dot(b)
		sxy += a.Cross(b)
	}
	theta := math.Atan2(sxy, sxx)
	tr := Transform{Scale: 1, Theta: theta}
	tr.T = cd.Sub(cs.Rotate(theta))
	return tr, true
}
