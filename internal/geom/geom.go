// Package geom provides the 2-D geometric primitives used throughout
// CrowdMap: points/vectors, line segments, axis-aligned rectangles, simple
// polygons and rigid transforms. The world frame is a right-handed plane
// with x east and y north, distances in meters, angles in radians measured
// counterclockwise from +x.
package geom

import (
	"fmt"
	"math"
)

// Pt is a point or vector in the plane.
type Pt struct {
	X, Y float64
}

// P is shorthand for constructing a Pt.
func P(x, y float64) Pt { return Pt{X: x, Y: y} }

// Add returns p + q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Pt) Scale(s float64) Pt { return Pt{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Pt) Dot(q Pt) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Pt) Cross(q Pt) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Pt) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the distance between p and q.
func (p Pt) Dist(q Pt) float64 { return p.Sub(q).Norm() }

// Angle returns the direction of p in radians, in (-π, π].
func (p Pt) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Unit returns p normalized to length 1; the zero vector is returned as-is.
func (p Pt) Unit() Pt {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// Rotate returns p rotated counterclockwise by theta radians about the
// origin.
func (p Pt) Rotate(theta float64) Pt {
	c, s := math.Cos(theta), math.Sin(theta)
	return Pt{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// FromPolar builds the vector with the given length and direction.
func FromPolar(r, theta float64) Pt {
	return Pt{r * math.Cos(theta), r * math.Sin(theta)}
}

// String implements fmt.Stringer.
func (p Pt) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Seg is a directed line segment from A to B.
type Seg struct {
	A, B Pt
}

// Len returns the segment length.
func (s Seg) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the direction angle of the segment in radians.
func (s Seg) Dir() float64 { return s.B.Sub(s.A).Angle() }

// Midpoint returns the segment midpoint.
func (s Seg) Midpoint() Pt { return s.A.Add(s.B).Scale(0.5) }

// At returns the point A + t·(B-A); t in [0,1] lies on the segment.
func (s Seg) At(t float64) Pt { return s.A.Add(s.B.Sub(s.A).Scale(t)) }

// DistToPoint returns the distance from p to the closest point on the
// segment.
func (s Seg) DistToPoint(p Pt) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(s.At(t))
}

// Intersect reports whether segments s and t properly intersect or touch,
// and if so returns the intersection point closest to s.A. Collinear
// overlapping segments report the overlap start.
func (s Seg) Intersect(t Seg) (Pt, bool) {
	r := s.B.Sub(s.A)
	q := t.B.Sub(t.A)
	denom := r.Cross(q)
	diff := t.A.Sub(s.A)
	if math.Abs(denom) < 1e-12 {
		// Parallel. Check collinear overlap.
		if math.Abs(diff.Cross(r)) > 1e-9 {
			return Pt{}, false
		}
		rr := r.Dot(r)
		if rr == 0 {
			if s.A.Dist(t.A) < 1e-9 {
				return s.A, true
			}
			return Pt{}, false
		}
		t0 := diff.Dot(r) / rr
		t1 := t0 + q.Dot(r)/rr
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t1 < 0 || t0 > 1 {
			return Pt{}, false
		}
		u := math.Max(0, t0)
		return s.At(u), true
	}
	u := diff.Cross(q) / denom
	v := diff.Cross(r) / denom
	if u < -1e-12 || u > 1+1e-12 || v < -1e-12 || v > 1+1e-12 {
		return Pt{}, false
	}
	return s.At(math.Min(1, math.Max(0, u))), true
}

// Rect is an axis-aligned rectangle with Min ≤ Max componentwise.
type Rect struct {
	Min, Max Pt
}

// R builds a rectangle from two corners in any order.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Pt{x0, y0}, Max: Pt{x1, y1}}
}

// W returns the rectangle width (x extent).
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the rectangle height (y extent).
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle center.
func (r Rect) Center() Pt { return r.Min.Add(r.Max).Scale(0.5) }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and q share any area or boundary.
func (r Rect) Intersects(q Rect) bool {
	return r.Min.X <= q.Max.X && q.Min.X <= r.Max.X &&
		r.Min.Y <= q.Max.Y && q.Min.Y <= r.Max.Y
}

// Intersection returns the overlapping rectangle and whether it is
// non-empty.
func (r Rect) Intersection(q Rect) (Rect, bool) {
	out := Rect{
		Min: Pt{math.Max(r.Min.X, q.Min.X), math.Max(r.Min.Y, q.Min.Y)},
		Max: Pt{math.Min(r.Max.X, q.Max.X), math.Min(r.Max.Y, q.Max.Y)},
	}
	if out.Min.X > out.Max.X || out.Min.Y > out.Max.Y {
		return Rect{}, false
	}
	return out, true
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	return Rect{
		Min: Pt{math.Min(r.Min.X, q.Min.X), math.Min(r.Min.Y, q.Min.Y)},
		Max: Pt{math.Max(r.Max.X, q.Max.X), math.Max(r.Max.Y, q.Max.Y)},
	}
}

// Expand grows the rectangle by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{Min: Pt{r.Min.X - d, r.Min.Y - d}, Max: Pt{r.Max.X + d, r.Max.Y + d}}
}

// Edges returns the four boundary segments in counterclockwise order.
func (r Rect) Edges() [4]Seg {
	a := r.Min
	b := Pt{r.Max.X, r.Min.Y}
	c := r.Max
	d := Pt{r.Min.X, r.Max.Y}
	return [4]Seg{{a, b}, {b, c}, {c, d}, {d, a}}
}

// Aspect returns the long-side / short-side ratio (≥ 1). A degenerate
// rectangle returns +Inf.
func (r Rect) Aspect() float64 {
	w, h := r.W(), r.H()
	lo := math.Min(w, h)
	hi := math.Max(w, h)
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// BoundingRect returns the axis-aligned bounding rectangle of the points.
// It panics on an empty input.
func BoundingRect(pts []Pt) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of no points")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}
