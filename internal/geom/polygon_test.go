package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon {
	return NewPolygon([]Pt{P(0, 0), P(1, 0), P(1, 1), P(0, 1)})
}

func TestPolygonArea(t *testing.T) {
	sq := unitSquare()
	if got := sq.Area(); !almostEq(got, 1, 1e-12) {
		t.Errorf("Area = %v", got)
	}
	if got := sq.SignedArea(); !almostEq(got, 1, 1e-12) {
		t.Errorf("CCW SignedArea = %v, want +1", got)
	}
	cw := NewPolygon([]Pt{P(0, 0), P(0, 1), P(1, 1), P(1, 0)})
	if got := cw.SignedArea(); !almostEq(got, -1, 1e-12) {
		t.Errorf("CW SignedArea = %v, want -1", got)
	}
	if got := NewPolygon([]Pt{P(0, 0), P(1, 1)}).Area(); got != 0 {
		t.Errorf("degenerate Area = %v", got)
	}
}

func TestPolygonPerimeterCentroid(t *testing.T) {
	sq := unitSquare()
	if got := sq.Perimeter(); !almostEq(got, 4, 1e-12) {
		t.Errorf("Perimeter = %v", got)
	}
	if got := sq.Centroid(); !ptAlmostEq(got, P(0.5, 0.5), 1e-12) {
		t.Errorf("Centroid = %v", got)
	}
	// L-shape centroid check against a hand computation: the L covering
	// [0,2]×[0,1] ∪ [0,1]×[1,2] has area 3 and centroid (5.5/6, 5.5/6)... verify
	// by decomposition: A1=2 at (1, .5), A2=1 at (.5, 1.5) → cx=(2·1+1·.5)/3=5/6·...
	l := NewPolygon([]Pt{P(0, 0), P(2, 0), P(2, 1), P(1, 1), P(1, 2), P(0, 2)})
	c := l.Centroid()
	wantX := (2*1.0 + 1*0.5) / 3
	wantY := (2*0.5 + 1*1.5) / 3
	if !ptAlmostEq(c, P(wantX, wantY), 1e-12) {
		t.Errorf("L centroid = %v, want (%v, %v)", c, wantX, wantY)
	}
}

func TestPolygonContains(t *testing.T) {
	l := NewPolygon([]Pt{P(0, 0), P(2, 0), P(2, 1), P(1, 1), P(1, 2), P(0, 2)})
	tests := []struct {
		p    Pt
		want bool
	}{
		{P(0.5, 0.5), true},
		{P(1.5, 0.5), true},
		{P(0.5, 1.5), true},
		{P(1.5, 1.5), false}, // inside the notch
		{P(3, 3), false},
		{P(-0.1, 0.5), false},
	}
	for _, tt := range tests {
		if got := l.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPolygonTransformations(t *testing.T) {
	sq := unitSquare()
	tr := sq.Translate(P(2, 3))
	if !ptAlmostEq(tr.Centroid(), P(2.5, 3.5), 1e-12) {
		t.Errorf("Translate centroid = %v", tr.Centroid())
	}
	rot := sq.RotateAbout(P(0.5, 0.5), math.Pi/2)
	if !almostEq(rot.Area(), 1, 1e-12) {
		t.Errorf("rotated Area = %v", rot.Area())
	}
	if !ptAlmostEq(rot.Centroid(), P(0.5, 0.5), 1e-12) {
		t.Errorf("rotation about centroid moved it: %v", rot.Centroid())
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Pt{P(0, 0), P(2, 0), P(2, 2), P(0, 2), P(1, 1), P(0.5, 0.5)}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(hull), hull)
	}
	if got := NewPolygon(hull).Area(); !almostEq(got, 4, 1e-12) {
		t.Errorf("hull area = %v, want 4", got)
	}
}

func TestConvexHullProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Pt, 30)
		for i := range pts {
			pts[i] = P(rng.Float64()*10, rng.Float64()*10)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return false
		}
		hp := NewPolygon(hull)
		// Every input point inside or on the hull (within tolerance).
		for _, p := range pts {
			if hp.Contains(p) {
				continue
			}
			onEdge := false
			for _, e := range hp.Edges() {
				if e.DistToPoint(p) < 1e-9 {
					onEdge = true
					break
				}
			}
			if !onEdge {
				return false
			}
		}
		// Hull must be convex: all cross products one sign.
		n := len(hull)
		for i := 0; i < n; i++ {
			a, b, c := hull[i], hull[(i+1)%n], hull[(i+2)%n]
			if b.Sub(a).Cross(c.Sub(b)) < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: propRand()}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionArea(t *testing.T) {
	a := unitSquare()
	b := NewPolygon([]Pt{P(0.5, 0), P(1.5, 0), P(1.5, 1), P(0.5, 1)})
	got := IntersectionArea(a, b, 0.01)
	if math.Abs(got-0.5) > 0.03 {
		t.Errorf("IntersectionArea = %v, want ≈0.5", got)
	}
	far := NewPolygon([]Pt{P(5, 5), P(6, 5), P(6, 6), P(5, 6)})
	if got := IntersectionArea(a, far, 0.01); got != 0 {
		t.Errorf("disjoint IntersectionArea = %v", got)
	}
	if got := IntersectionArea(a, b, 0); got != 0 {
		t.Errorf("zero cell IntersectionArea = %v", got)
	}
}

func TestTransformApplyInvert(t *testing.T) {
	tr := Transform{Scale: 2, Theta: math.Pi / 3, T: P(1, -2)}
	p := P(3, 4)
	back := tr.Invert().Apply(tr.Apply(p))
	if !ptAlmostEq(back, p, 1e-9) {
		t.Errorf("Invert round trip = %v, want %v", back, p)
	}
	id := Identity()
	if !ptAlmostEq(id.Apply(p), p, 0) {
		t.Error("Identity should not move points")
	}
}

func TestTransformCompose(t *testing.T) {
	a := Transform{Scale: 1, Theta: math.Pi / 2}
	b := Transform{Scale: 1, T: P(1, 0)}
	p := P(1, 0)
	// Apply a then b: rotate to (0,1) then translate to (1,1).
	got := a.Compose(b).Apply(p)
	if !ptAlmostEq(got, P(1, 1), 1e-12) {
		t.Errorf("Compose apply = %v, want (1,1)", got)
	}
}

func TestFitRigid(t *testing.T) {
	src := []Pt{P(0, 0), P(1, 0), P(1, 1), P(0, 1), P(0.3, 0.7)}
	want := Transform{Scale: 1, Theta: 0.7, T: P(2, -1)}
	dst := want.ApplyAll(src)
	got, ok := FitRigid(src, dst)
	if !ok {
		t.Fatal("FitRigid failed")
	}
	if !almostEq(got.Theta, want.Theta, 1e-9) {
		t.Errorf("Theta = %v, want %v", got.Theta, want.Theta)
	}
	if !ptAlmostEq(got.T, want.T, 1e-9) {
		t.Errorf("T = %v, want %v", got.T, want.T)
	}
	if _, ok := FitRigid(nil, nil); ok {
		t.Error("FitRigid of empty should fail")
	}
	if _, ok := FitRigid(src, src[:2]); ok {
		t.Error("FitRigid of mismatched lengths should fail")
	}
}

func TestFitRigidRecoversRandomTransformsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := make([]Pt, 10)
		for i := range src {
			src[i] = P(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		want := Transform{Scale: 1, Theta: rng.Float64()*2*math.Pi - math.Pi, T: P(rng.Float64()*4-2, rng.Float64()*4-2)}
		dst := want.ApplyAll(src)
		got, ok := FitRigid(src, dst)
		if !ok {
			return false
		}
		for i := range src {
			if got.Apply(src[i]).Dist(dst[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: propRand()}); err != nil {
		t.Error(err)
	}
}
