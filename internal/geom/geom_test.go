package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// propRand makes property tests deterministic: testing/quick seeds from
// the wall clock by default, which makes rare counterexamples flaky.
func propRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func ptAlmostEq(a, b Pt, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol)
}

func TestPtArithmetic(t *testing.T) {
	p := P(1, 2)
	q := P(3, -1)
	if got := p.Add(q); !ptAlmostEq(got, P(4, 1), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !ptAlmostEq(got, P(-2, 3), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !ptAlmostEq(got, P(2, 4), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if got := P(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := P(0, 0).Dist(P(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestPtRotate(t *testing.T) {
	got := P(1, 0).Rotate(math.Pi / 2)
	if !ptAlmostEq(got, P(0, 1), 1e-12) {
		t.Errorf("Rotate 90° = %v, want (0,1)", got)
	}
	if got := P(1, 1).Angle(); !almostEq(got, math.Pi/4, 1e-12) {
		t.Errorf("Angle = %v", got)
	}
}

func TestRotatePreservesNormProperty(t *testing.T) {
	f := func(x, y, th float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(th) ||
			math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.Abs(th) > 1e3 {
			return true
		}
		p := P(x, y)
		return almostEq(p.Rotate(th).Norm(), p.Norm(), 1e-6*(1+p.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: propRand()}); err != nil {
		t.Error(err)
	}
}

func TestUnit(t *testing.T) {
	if got := P(3, 4).Unit().Norm(); !almostEq(got, 1, 1e-12) {
		t.Errorf("Unit norm = %v", got)
	}
	if got := P(0, 0).Unit(); !ptAlmostEq(got, P(0, 0), 0) {
		t.Errorf("zero Unit = %v", got)
	}
}

func TestFromPolar(t *testing.T) {
	got := FromPolar(2, math.Pi/2)
	if !ptAlmostEq(got, P(0, 2), 1e-12) {
		t.Errorf("FromPolar = %v", got)
	}
}

func TestSegBasics(t *testing.T) {
	s := Seg{P(0, 0), P(4, 0)}
	if s.Len() != 4 {
		t.Errorf("Len = %v", s.Len())
	}
	if !ptAlmostEq(s.Midpoint(), P(2, 0), 0) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if !ptAlmostEq(s.At(0.25), P(1, 0), 0) {
		t.Errorf("At = %v", s.At(0.25))
	}
	if got := s.Dir(); got != 0 {
		t.Errorf("Dir = %v", got)
	}
}

func TestSegDistToPoint(t *testing.T) {
	s := Seg{P(0, 0), P(10, 0)}
	tests := []struct {
		p    Pt
		want float64
	}{
		{P(5, 3), 3},
		{P(-3, 4), 5},  // beyond A: distance to endpoint
		{P(13, -4), 5}, // beyond B
		{P(5, 0), 0},   // on segment
	}
	for _, tt := range tests {
		if got := s.DistToPoint(tt.p); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSegIntersect(t *testing.T) {
	tests := []struct {
		name   string
		s, u   Seg
		want   Pt
		wantOK bool
	}{
		{"crossing", Seg{P(0, 0), P(2, 2)}, Seg{P(0, 2), P(2, 0)}, P(1, 1), true},
		{"touching at endpoint", Seg{P(0, 0), P(1, 1)}, Seg{P(1, 1), P(2, 0)}, P(1, 1), true},
		{"parallel apart", Seg{P(0, 0), P(1, 0)}, Seg{P(0, 1), P(1, 1)}, Pt{}, false},
		{"disjoint", Seg{P(0, 0), P(1, 0)}, Seg{P(2, 1), P(3, -1)}, Pt{}, false},
		{"collinear overlap", Seg{P(0, 0), P(4, 0)}, Seg{P(2, 0), P(6, 0)}, P(2, 0), true},
		{"collinear disjoint", Seg{P(0, 0), P(1, 0)}, Seg{P(2, 0), P(3, 0)}, Pt{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.s.Intersect(tt.u)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && !ptAlmostEq(got, tt.want, 1e-9) {
				t.Errorf("point = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectBasics(t *testing.T) {
	r := R(3, 4, 1, 2) // unordered corners
	if r.Min != P(1, 2) || r.Max != P(3, 4) {
		t.Fatalf("R normalization failed: %+v", r)
	}
	if r.W() != 2 || r.H() != 2 || r.Area() != 4 {
		t.Error("W/H/Area wrong")
	}
	if !ptAlmostEq(r.Center(), P(2, 3), 0) {
		t.Error("Center wrong")
	}
	if !r.Contains(P(2, 3)) || r.Contains(P(0, 0)) {
		t.Error("Contains wrong")
	}
}

func TestRectIntersection(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 6, 6)
	got, ok := a.Intersection(b)
	if !ok || got != R(2, 2, 4, 4) {
		t.Errorf("Intersection = %+v, ok=%v", got, ok)
	}
	c := R(5, 5, 6, 6)
	if _, ok := a.Intersection(c); ok {
		t.Error("disjoint rects should not intersect")
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
}

func TestRectUnionExpandEdges(t *testing.T) {
	a := R(0, 0, 1, 1)
	b := R(2, 2, 3, 3)
	if got := a.Union(b); got != R(0, 0, 3, 3) {
		t.Errorf("Union = %+v", got)
	}
	if got := a.Expand(1); got != R(-1, -1, 2, 2) {
		t.Errorf("Expand = %+v", got)
	}
	edges := a.Edges()
	var per float64
	for _, e := range edges {
		per += e.Len()
	}
	if !almostEq(per, 4, 1e-12) {
		t.Errorf("edge perimeter = %v", per)
	}
}

func TestRectAspect(t *testing.T) {
	if got := R(0, 0, 4, 2).Aspect(); got != 2 {
		t.Errorf("Aspect = %v, want 2", got)
	}
	if got := R(0, 0, 2, 4).Aspect(); got != 2 {
		t.Errorf("Aspect (tall) = %v, want 2", got)
	}
	if got := R(0, 0, 1, 0).Aspect(); !math.IsInf(got, 1) {
		t.Errorf("degenerate Aspect = %v, want +Inf", got)
	}
}

func TestBoundingRect(t *testing.T) {
	r := BoundingRect([]Pt{P(1, 5), P(-2, 3), P(4, -1)})
	if r != R(-2, -1, 4, 5) {
		t.Errorf("BoundingRect = %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect(nil) should panic")
		}
	}()
	BoundingRect(nil)
}
