// Package floorplan assembles and renders the final building floor plan
// (paper Section III-D): the reconstructed hallway skeleton (occupancy
// grid → α-shape boundary) is merged with the force-directed room
// placements into a single Plan that can be rasterized, rendered as SVG or
// ASCII, and scored against ground truth.
package floorplan

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"crowdmap/internal/alphashape"
	"crowdmap/internal/forcedir"
	"crowdmap/internal/geom"
	"crowdmap/internal/gridmap"
	"crowdmap/internal/layout"
	"crowdmap/internal/trajectory"
)

// Room is a placed rectangular room in the global frame.
type Room struct {
	ID     string
	Center geom.Pt
	// Width and Length are the rectangle extents along the rotated axes.
	Width, Length float64
	// Theta is the wall orientation, radians.
	Theta float64
	// Layout retains the per-room reconstruction evidence.
	Layout layout.Layout
}

// Polygon returns the room outline.
func (r Room) Polygon() geom.Polygon {
	hw, hl := r.Width/2, r.Length/2
	corners := []geom.Pt{
		{X: -hw, Y: -hl}, {X: hw, Y: -hl}, {X: hw, Y: hl}, {X: -hw, Y: hl},
	}
	for i, c := range corners {
		corners[i] = c.Rotate(r.Theta).Add(r.Center)
	}
	return geom.NewPolygon(corners)
}

// Bounds returns the room's axis-aligned bounding rectangle.
func (r Room) Bounds() geom.Rect {
	return r.Polygon().Bounds()
}

// Plan is a reconstructed single-floor plan.
type Plan struct {
	Building string
	// HallwayMask is the binarized, repaired occupancy skeleton.
	HallwayMask *gridmap.Binary
	// HallwayShape is the α-shape of the skeleton cells.
	HallwayShape *alphashape.Shape
	// Rooms are the placed rooms after force-directed arrangement.
	Rooms []Room
	// Trajectories are the aggregated global-frame trajectories that built
	// the skeleton (kept for rendering and diagnostics).
	Trajectories []*trajectory.Trajectory
}

// SkeletonParams tunes hallway skeleton reconstruction.
type SkeletonParams struct {
	// GridRes is the occupancy cell size, meters.
	GridRes float64
	// Alpha is the α-shape circumradius threshold hα, meters.
	Alpha float64
	// CloseRadius is the morphological closing radius in cells (path
	// repair).
	CloseRadius int
	// Margin expands the grid beyond the trajectory bounding box, meters.
	Margin float64
}

// DefaultSkeletonParams matches the evaluation tuning.
func DefaultSkeletonParams() SkeletonParams {
	return SkeletonParams{GridRes: 0.8, Alpha: 1.7, CloseRadius: 1, Margin: 3}
}

// Validate checks the parameters.
func (p SkeletonParams) Validate() error {
	if p.GridRes <= 0 {
		return fmt.Errorf("floorplan: grid resolution must be positive, got %g", p.GridRes)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("floorplan: alpha must be positive, got %g", p.Alpha)
	}
	if p.CloseRadius < 0 {
		return fmt.Errorf("floorplan: close radius must be ≥ 0, got %d", p.CloseRadius)
	}
	return nil
}

// BuildSkeleton reconstructs the hallway path skeleton from aggregated
// global-frame trajectories, following the paper's six steps: grid init,
// trajectory projection, Otsu binarization, α-shape boundary, α-threshold
// regularization and path repair.
func BuildSkeleton(trajs []*trajectory.Trajectory, p SkeletonParams) (*gridmap.Binary, *alphashape.Shape, error) {
	bounds, err := SkeletonBounds(trajs, p)
	if err != nil {
		return nil, nil, err
	}
	grid, err := gridmap.New(bounds, p.GridRes)
	if err != nil {
		return nil, nil, err
	}
	for _, tr := range trajs {
		grid.AddTrajectory(tr)
	}
	return SkeletonFromGrid(grid, p)
}

// SkeletonBounds validates the inputs and returns the grid bounds
// BuildSkeleton would use for these trajectories: the bounding rectangle
// of every point, expanded by the margin. An incremental caller compares
// this against its cached grid's bounds to decide whether the occupancy
// counts can be patched in place or the grid must be rebuilt.
func SkeletonBounds(trajs []*trajectory.Trajectory, p SkeletonParams) (geom.Rect, error) {
	if err := p.Validate(); err != nil {
		return geom.Rect{}, err
	}
	if len(trajs) == 0 {
		return geom.Rect{}, fmt.Errorf("floorplan: no trajectories")
	}
	var all []geom.Pt
	for _, tr := range trajs {
		all = append(all, tr.Positions()...)
	}
	if len(all) == 0 {
		return geom.Rect{}, fmt.Errorf("floorplan: trajectories contain no points")
	}
	return geom.BoundingRect(all).Expand(p.Margin), nil
}

// SkeletonFromGrid finishes skeleton reconstruction over an already
// populated occupancy grid: Otsu binarization (with the sparse-corpus
// fallback), morphological path repair, largest-component selection, and
// the α-shape boundary. BuildSkeleton is exactly "rasterize, then
// SkeletonFromGrid", so an incremental caller that patches the grid gets
// a bit-identical mask and shape.
func SkeletonFromGrid(grid *gridmap.Grid, p SkeletonParams) (*gridmap.Binary, *alphashape.Shape, error) {
	thr := grid.OtsuThreshold()
	// Otsu splits foreground intensity; cells must at least be visited.
	if thr < 1 {
		thr = 0
	}
	// Guard against over-pruning at low crowd density: Otsu assumes the
	// noise and path populations are both well represented. When the
	// threshold would discard most of the visited area, the data is sparse
	// rather than noisy, so fall back to keeping every visited cell.
	visited := grid.Binarize(0).Count()
	if visited > 0 && float64(grid.Binarize(thr).Count()) < 0.5*float64(visited) {
		thr = 0
	}
	mask := grid.Binarize(thr)
	mask = mask.Close(p.CloseRadius)
	mask = mask.LargestComponent()
	pts := mask.TruePoints()
	if len(pts) < 3 {
		return nil, nil, fmt.Errorf("floorplan: skeleton has only %d cells", len(pts))
	}
	shape, err := alphashape.Compute(pts, p.Alpha)
	if err != nil {
		return nil, nil, fmt.Errorf("floorplan: alpha shape: %w", err)
	}
	// The hallway region is the α-shape's interior (the paper's
	// "regularized boundaries"), not the raw skeleton cells: the shape
	// fills the corridor width between individual walking lines.
	region := RasterizeShape(shape, mask)
	return region, shape, nil
}

// RasterizeShape marks every cell of a grid-compatible mask whose center
// lies inside the α-shape.
func RasterizeShape(shape *alphashape.Shape, like *gridmap.Binary) *gridmap.Binary {
	out := &gridmap.Binary{
		Bounds: like.Bounds, Res: like.Res, W: like.W, H: like.H,
		Cells: make([]bool, like.W*like.H),
	}
	// Spatial pruning: test triangles per cell via bounding boxes grouped
	// into a coarse index.
	type tri struct {
		t  alphashape.Triangle
		bb geom.Rect
	}
	tris := make([]tri, len(shape.Triangles))
	for i, t := range shape.Triangles {
		tris[i] = tri{t: t, bb: geom.BoundingRect([]geom.Pt{t.A, t.B, t.C})}
	}
	for iy := 0; iy < out.H; iy++ {
		for ix := 0; ix < out.W; ix++ {
			c := out.CenterOf(ix, iy)
			for _, tr := range tris {
				if !tr.bb.Contains(c) {
					continue
				}
				if tr.t.Contains(c) {
					out.Cells[iy*out.W+ix] = true
					break
				}
			}
		}
	}
	return out
}

// RoomObservation is a reconstructed room before placement: the panorama
// capture position in the global frame plus its estimated layout.
type RoomObservation struct {
	ID         string
	CameraPos  geom.Pt // SRS capture position, global frame
	RoomLayout layout.Layout
}

// PlaceRooms arranges room observations around the hallway mask with the
// force-directed algorithm and returns the placed rooms.
func PlaceRooms(obs []RoomObservation, mask *gridmap.Binary, p forcedir.Params) ([]Room, error) {
	if len(obs) == 0 {
		return nil, nil
	}
	nodes := make([]*forcedir.Node, len(obs))
	for i, o := range obs {
		center := o.CameraPos.Add(o.RoomLayout.CenterOffset())
		// Half extents of the rotated rectangle's bounding box keep the
		// spring system axis-aligned and fast.
		w, l := o.RoomLayout.Width(), o.RoomLayout.Length()
		c, s := math.Abs(math.Cos(o.RoomLayout.Theta)), math.Abs(math.Sin(o.RoomLayout.Theta))
		hw := (w*c + l*s) / 2
		hh := (w*s + l*c) / 2
		nodes[i] = &forcedir.Node{
			ID:     o.ID,
			Anchor: center,
			Pos:    center,
			HalfW:  hw,
			HalfH:  hh,
		}
	}
	var hallRects []geom.Rect
	if mask != nil {
		// Erode the region before using it as an obstacle: one-cell-wide
		// bulges where a user walked into a room are not corridor and must
		// not push the room off its observed position.
		core := mask.Erode(1)
		for iy := 0; iy < core.H; iy++ {
			for ix := 0; ix < core.W; ix++ {
				if !core.At(ix, iy) {
					continue
				}
				c := core.CenterOf(ix, iy)
				half := core.Res / 2
				hallRects = append(hallRects, geom.R(c.X-half, c.Y-half, c.X+half, c.Y+half))
			}
		}
	}
	if _, err := forcedir.Arrange(nodes, forcedir.RectHallway(hallRects), p); err != nil {
		return nil, err
	}
	rooms := make([]Room, len(obs))
	for i, o := range obs {
		rooms[i] = Room{
			ID:     o.ID,
			Center: nodes[i].Pos,
			Width:  o.RoomLayout.Width(),
			Length: o.RoomLayout.Length(),
			Theta:  o.RoomLayout.Theta,
			Layout: o.RoomLayout,
		}
	}
	return rooms, nil
}

// Bounds returns the plan's overall bounding rectangle.
func (p *Plan) Bounds() (geom.Rect, error) {
	var have bool
	var out geom.Rect
	if p.HallwayMask != nil {
		out = p.HallwayMask.Bounds
		have = true
	}
	for _, r := range p.Rooms {
		b := r.Bounds()
		if !have {
			out = b
			have = true
			continue
		}
		out = out.Union(b)
	}
	if !have {
		return geom.Rect{}, fmt.Errorf("floorplan: empty plan")
	}
	return out, nil
}

// RenderASCII draws the plan as a text raster at the given meters-per-
// character resolution: '#' hallway, room outlines by index letter, '.'
// empty.
func (p *Plan) RenderASCII(res float64) (string, error) {
	if res <= 0 {
		return "", fmt.Errorf("floorplan: resolution must be positive, got %g", res)
	}
	bounds, err := p.Bounds()
	if err != nil {
		return "", err
	}
	w := int(bounds.W()/res) + 1
	h := int(bounds.H()/res) + 1
	if w > 400 || h > 400 {
		return "", fmt.Errorf("floorplan: raster %dx%d too large; increase resolution", w, h)
	}
	canvas := make([][]byte, h)
	for i := range canvas {
		canvas[i] = bytes.Repeat([]byte{'.'}, w)
	}
	plot := func(pt geom.Pt, ch byte) {
		x := int((pt.X - bounds.Min.X) / res)
		y := int((pt.Y - bounds.Min.Y) / res)
		if x < 0 || x >= w || y < 0 || y >= h {
			return
		}
		canvas[h-1-y][x] = ch // north up
	}
	if p.HallwayMask != nil {
		for _, pt := range p.HallwayMask.TruePoints() {
			plot(pt, '#')
		}
	}
	for i, room := range p.Rooms {
		ch := byte('A' + i%26)
		poly := room.Polygon()
		for _, e := range poly.Edges() {
			steps := int(e.Len()/res) + 1
			for s := 0; s <= steps; s++ {
				plot(e.At(float64(s)/float64(steps)), ch)
			}
		}
	}
	var sb strings.Builder
	for _, row := range canvas {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// RenderSVG emits a standalone SVG drawing of the plan: hallway cells in
// gray, room rectangles outlined, room IDs as labels.
func (p *Plan) RenderSVG() ([]byte, error) {
	bounds, err := p.Bounds()
	if err != nil {
		return nil, err
	}
	const scale = 12.0 // pixels per meter
	wpx := bounds.W() * scale
	hpx := bounds.H() * scale
	var sb bytes.Buffer
	tx := func(pt geom.Pt) (float64, float64) {
		return (pt.X - bounds.Min.X) * scale, (bounds.Max.Y - pt.Y) * scale
	}
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		wpx, hpx, wpx, hpx)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if p.HallwayMask != nil {
		half := p.HallwayMask.Res / 2
		for _, pt := range p.HallwayMask.TruePoints() {
			x, y := tx(geom.P(pt.X-half, pt.Y+half))
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#bbb"/>`+"\n",
				x, y, p.HallwayMask.Res*scale, p.HallwayMask.Res*scale)
		}
	}
	for _, room := range p.Rooms {
		poly := room.Polygon()
		var pts []string
		for _, v := range poly.Vertices {
			x, y := tx(v)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&sb, `<polygon points="%s" fill="none" stroke="#0b64d8" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "))
		cx, cy := tx(room.Center)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle" fill="#333">%s</text>`+"\n",
			cx, cy, room.ID)
	}
	sb.WriteString("</svg>\n")
	return sb.Bytes(), nil
}
