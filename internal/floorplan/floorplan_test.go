package floorplan

import (
	"math"
	"strings"
	"testing"

	"crowdmap/internal/forcedir"
	"crowdmap/internal/geom"
	"crowdmap/internal/layout"
	"crowdmap/internal/trajectory"
)

// corridorTrajs builds n parallel straight trajectories along a 20 m
// corridor at lateral offsets spanning the width.
func corridorTrajs(n int) []*trajectory.Trajectory {
	var out []*trajectory.Trajectory
	for k := 0; k < n; k++ {
		y := 1.0 + 1.2*float64(k)/float64(max(n-1, 1))
		tr := &trajectory.Trajectory{ID: "t"}
		for i := 0; i <= 40; i++ {
			x := float64(i) * 0.5
			tr.Points = append(tr.Points, trajectory.Point{T: float64(i), Pos: geom.P(x, y)})
		}
		out = append(out, tr)
	}
	return out
}

func TestSkeletonParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SkeletonParams)
	}{
		{"grid", func(p *SkeletonParams) { p.GridRes = 0 }},
		{"alpha", func(p *SkeletonParams) { p.Alpha = 0 }},
		{"close", func(p *SkeletonParams) { p.CloseRadius = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultSkeletonParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestBuildSkeletonValidation(t *testing.T) {
	if _, _, err := BuildSkeleton(nil, DefaultSkeletonParams()); err == nil {
		t.Error("no trajectories should error")
	}
	empty := []*trajectory.Trajectory{{}}
	if _, _, err := BuildSkeleton(empty, DefaultSkeletonParams()); err == nil {
		t.Error("empty trajectories should error")
	}
}

func TestBuildSkeletonCoversCorridor(t *testing.T) {
	mask, shape, err := BuildSkeleton(corridorTrajs(6), DefaultSkeletonParams())
	if err != nil {
		t.Fatal(err)
	}
	if shape.Area() < 10 {
		t.Errorf("alpha shape area = %.1f, want corridor-scale", shape.Area())
	}
	// Points along the corridor center must be covered by the region.
	covered := 0
	for x := 2.0; x <= 18; x += 1 {
		ix := int((x - mask.Bounds.Min.X) / mask.Res)
		iy := int((1.6 - mask.Bounds.Min.Y) / mask.Res)
		if mask.At(ix, iy) {
			covered++
		}
	}
	if covered < 14 {
		t.Errorf("corridor center covered at only %d of 17 probes", covered)
	}
}

func TestRoomPolygonAndBounds(t *testing.T) {
	r := Room{Center: geom.P(5, 5), Width: 4, Length: 2, Theta: 0}
	poly := r.Polygon()
	if math.Abs(poly.Area()-8) > 1e-9 {
		t.Errorf("polygon area = %v", poly.Area())
	}
	if got := r.Bounds(); got != geom.R(3, 4, 7, 6) {
		t.Errorf("bounds = %+v", got)
	}
	// Rotated 90°: width and length swap in the bounding box.
	r.Theta = math.Pi / 2
	if got := r.Bounds(); math.Abs(got.W()-2) > 1e-9 || math.Abs(got.H()-4) > 1e-9 {
		t.Errorf("rotated bounds = %+v", got)
	}
}

func TestPlaceRoomsAnchorsAndSeparates(t *testing.T) {
	obs := []RoomObservation{
		{ID: "r1", CameraPos: geom.P(0, 0), RoomLayout: layout.Layout{DXMinus: 2, DXPlus: 2, DYMinus: 1.5, DYPlus: 1.5}},
		{ID: "r2", CameraPos: geom.P(3.5, 0), RoomLayout: layout.Layout{DXMinus: 2, DXPlus: 2, DYMinus: 1.5, DYPlus: 1.5}},
	}
	rooms, err := PlaceRooms(obs, nil, forcedir.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rooms) != 2 {
		t.Fatalf("placed %d rooms", len(rooms))
	}
	gap := rooms[1].Center.X - rooms[0].Center.X
	if gap < 3.5 {
		t.Errorf("rooms not separated: centers %.2f apart, want ≥ 3.5", gap)
	}
	if rooms[0].Width != 4 || rooms[0].Length != 3 {
		t.Errorf("room dims wrong: %v × %v", rooms[0].Width, rooms[0].Length)
	}
	empty, err := PlaceRooms(nil, nil, forcedir.DefaultParams())
	if err != nil || empty != nil {
		t.Error("no observations should place no rooms")
	}
}

func testPlan(t *testing.T) *Plan {
	t.Helper()
	mask, shape, err := BuildSkeleton(corridorTrajs(4), DefaultSkeletonParams())
	if err != nil {
		t.Fatal(err)
	}
	return &Plan{
		Building:     "test",
		HallwayMask:  mask,
		HallwayShape: shape,
		Rooms: []Room{
			{ID: "A", Center: geom.P(5, 5), Width: 4, Length: 3},
			{ID: "B", Center: geom.P(12, 5), Width: 4, Length: 3},
		},
	}
}

func TestPlanBounds(t *testing.T) {
	p := testPlan(t)
	b, err := p.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !b.Contains(geom.P(12, 5)) || !b.Contains(geom.P(5, 1.5)) {
		t.Errorf("bounds %+v misses content", b)
	}
	var empty Plan
	if _, err := empty.Bounds(); err == nil {
		t.Error("empty plan bounds should error")
	}
}

func TestRenderASCII(t *testing.T) {
	p := testPlan(t)
	s, err := p.RenderASCII(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "#") {
		t.Error("no hallway cells rendered")
	}
	if !strings.Contains(s, "A") || !strings.Contains(s, "B") {
		t.Error("room outlines missing")
	}
	if _, err := p.RenderASCII(0); err == nil {
		t.Error("zero resolution should error")
	}
	if _, err := p.RenderASCII(0.001); err == nil {
		t.Error("huge raster should error")
	}
}

func TestRenderSVG(t *testing.T) {
	p := testPlan(t)
	svg, err := p.RenderSVG()
	if err != nil {
		t.Fatal(err)
	}
	s := string(svg)
	for _, want := range []string{"<svg", "polygon", ">A<", ">B<", "</svg>"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
