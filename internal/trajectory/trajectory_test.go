package trajectory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/sensor"
)

// propRand makes property tests deterministic: testing/quick seeds from
// the wall clock by default, which makes rare counterexamples flaky.
func propRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func line(n int, dt float64, step geom.Pt) *Trajectory {
	tr := &Trajectory{ID: "line"}
	pos := geom.Pt{}
	for i := 0; i < n; i++ {
		tr.Points = append(tr.Points, Point{T: float64(i) * dt, Pos: pos})
		pos = pos.Add(step)
	}
	return tr
}

func TestBasicsOnLine(t *testing.T) {
	tr := line(5, 1, geom.P(2, 0))
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Duration() != 4 {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if tr.PathLength() != 8 {
		t.Errorf("PathLength = %v", tr.PathLength())
	}
}

func TestEmptyTrajectory(t *testing.T) {
	var tr Trajectory
	if tr.Duration() != 0 || tr.PathLength() != 0 {
		t.Error("empty trajectory should have zero duration and length")
	}
	if _, err := tr.PositionAt(1); err == nil {
		t.Error("PositionAt on empty trajectory should error")
	}
}

func TestTranslate(t *testing.T) {
	tr := line(3, 1, geom.P(1, 0))
	moved := tr.Translate(geom.P(5, -2))
	if moved.Points[0].Pos != geom.P(5, -2) {
		t.Errorf("Translate start = %v", moved.Points[0].Pos)
	}
	if tr.Points[0].Pos != (geom.Pt{}) {
		t.Error("Translate must not mutate the original")
	}
	if moved.PathLength() != tr.PathLength() {
		t.Error("Translate must preserve path length")
	}
}

func TestPositionAt(t *testing.T) {
	tr := line(3, 2, geom.P(4, 0)) // t=0→(0,0), t=2→(4,0), t=4→(8,0)
	tests := []struct {
		t    float64
		want geom.Pt
	}{
		{-1, geom.P(0, 0)},
		{0, geom.P(0, 0)},
		{1, geom.P(2, 0)},
		{3, geom.P(6, 0)},
		{9, geom.P(8, 0)},
	}
	for _, tt := range tests {
		got, err := tr.PositionAt(tt.t)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dist(tt.want) > 1e-12 {
			t.Errorf("PositionAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestResample(t *testing.T) {
	tr := line(5, 1, geom.P(1, 1))
	rs, err := tr.Resample(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 9 {
		t.Errorf("resampled Len = %d, want 9", rs.Len())
	}
	for i := 1; i < rs.Len(); i++ {
		if math.Abs(rs.Points[i].T-rs.Points[i-1].T-0.5) > 1e-9 {
			t.Fatal("resampled intervals must be uniform")
		}
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("zero interval should error")
	}
	var empty Trajectory
	rs2, err := empty.Resample(1)
	if err != nil || rs2.Len() != 0 {
		t.Error("resampling empty should give empty")
	}
}

func TestResamplePreservesEndpointsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRNG(seed)
		tr := &Trajectory{}
		tt := 0.0
		pos := geom.Pt{}
		for i := 0; i < 20; i++ {
			tr.Points = append(tr.Points, Point{T: tt, Pos: pos})
			tt += 0.2 + rng.Float64()
			pos = pos.Add(geom.P(rng.NormFloat64(), rng.NormFloat64()))
		}
		rs, err := tr.Resample(0.5)
		if err != nil {
			return false
		}
		if rs.Points[0].Pos.Dist(tr.Points[0].Pos) > 1e-9 {
			return false
		}
		// Path length can only shrink under resampling (polyline chords).
		return rs.PathLength() <= tr.PathLength()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: propRand()}); err != nil {
		t.Error(err)
	}
}

func TestDeadReckonStraightWalk(t *testing.T) {
	cfg := sensor.DefaultConfig()
	const dist = 14.0
	speed := cfg.StepFreq * cfg.StepLength
	profile := []sensor.MotionSample{
		{T: 0, Pos: geom.Pt{}, Heading: 0, Walking: false},
		{T: 1, Pos: geom.Pt{}, Heading: 0, Walking: true},
		{T: 1 + dist/speed, Pos: geom.P(dist, 0), Heading: 0, Walking: false},
		{T: 2 + dist/speed, Pos: geom.P(dist, 0), Heading: 0, Walking: false},
	}
	samples, err := sensor.Simulate(profile, cfg, mathx.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DeadReckon(samples, cfg.StepLengthEst)
	if err != nil {
		t.Fatal(err)
	}
	end := tr.Points[len(tr.Points)-1].Pos
	if math.Abs(end.X-dist) > 2.0 {
		t.Errorf("dead-reckoned X = %v, want ≈%v", end.X, dist)
	}
	if math.Abs(end.Y) > 2.0 {
		t.Errorf("dead-reckoned Y = %v, want ≈0", end.Y)
	}
}

func TestDeadReckonLTurn(t *testing.T) {
	cfg := sensor.DefaultConfig()
	// 8 m east, quarter turn, 6 m north.
	speed := cfg.StepFreq * cfg.StepLength
	t1 := 8 / speed
	t2 := t1 + 1.5
	t3 := t2 + 6/speed
	profile := []sensor.MotionSample{
		{T: 0, Pos: geom.Pt{}, Heading: 0, Walking: true},
		{T: t1, Pos: geom.P(8, 0), Heading: 0, Walking: true},
		{T: t2, Pos: geom.P(8, 0), Heading: math.Pi / 2, Walking: true},
		{T: t3, Pos: geom.P(8, 6), Heading: math.Pi / 2, Walking: false},
		{T: t3 + 1, Pos: geom.P(8, 6), Heading: math.Pi / 2, Walking: false},
	}
	samples, err := sensor.Simulate(profile, cfg, mathx.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DeadReckon(samples, cfg.StepLengthEst)
	if err != nil {
		t.Fatal(err)
	}
	end := tr.Points[len(tr.Points)-1].Pos
	if end.Dist(geom.P(8, 6)) > 3.0 {
		t.Errorf("dead-reckoned end = %v, want ≈(8,6)", end)
	}
}

func TestResampleLongDurationNoDrift(t *testing.T) {
	// Regression: the loop used to accumulate t += dt, compounding
	// floating-point error over long captures — by the end of a multi-hour
	// span the sample times had drifted off the dt grid and the final
	// sample flickered against the end-of-span guard. The indexed loop
	// keeps every sample time exact.
	tr := line(36001, 0.1, geom.P(0.07, 0)) // one hour at 10 Hz
	const dt = 0.1
	rs, err := tr.Resample(dt)
	if err != nil {
		t.Fatal(err)
	}
	want := 36001 // floor(3600/0.1) + 1, no flicker
	if rs.Len() != want {
		t.Fatalf("resampled Len = %d, want %d", rs.Len(), want)
	}
	for i, p := range rs.Points {
		if got := float64(i) * dt; p.T != got {
			t.Fatalf("sample %d time = %v, want exactly %v (accumulated error)", i, p.T, got)
		}
	}
	last := rs.Points[rs.Len()-1]
	if math.Abs(last.T-3600) > 1e-9 {
		t.Errorf("final sample time = %v, want 3600", last.T)
	}
	if last.Pos.Dist(tr.Points[tr.Len()-1].Pos) > 1e-6 {
		t.Errorf("final sample drifted off the path end: %v", last.Pos)
	}
}

func TestResampleMatchesPositionAt(t *testing.T) {
	// The monotonic cursor must reproduce PositionAt bit-for-bit, including
	// the duplicate-timestamp and clamping edge cases.
	f := func(seed int64) bool {
		rng := mathx.NewRNG(seed)
		tr := &Trajectory{}
		tt := 0.0
		pos := geom.Pt{}
		for i := 0; i < 30; i++ {
			tr.Points = append(tr.Points, Point{T: tt, Pos: pos})
			if rng.Float64() < 0.2 {
				// Duplicate timestamp with a different position: the cursor
				// must resolve it exactly as the linear scan does.
				pos = pos.Add(geom.P(rng.NormFloat64(), rng.NormFloat64()))
				tr.Points = append(tr.Points, Point{T: tt, Pos: pos})
			}
			tt += 0.1 + rng.Float64()
			pos = pos.Add(geom.P(rng.NormFloat64(), rng.NormFloat64()))
		}
		rs, err := tr.Resample(0.3)
		if err != nil {
			return false
		}
		for _, p := range rs.Points {
			want, err := tr.PositionAt(p.T)
			if err != nil || p.Pos != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: propRand()}); err != nil {
		t.Error(err)
	}
}

func BenchmarkResample(b *testing.B) {
	// Trajectory-only reconstruction resamples every SWS capture, so this
	// is on the hot path: the cursor keeps it O(n + samples) where the old
	// per-sample rescan was O(n²).
	tr := line(10000, 0.5, geom.P(0.35, 0.1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Resample(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeadReckonStationary(t *testing.T) {
	// A stationary capture detects zero steps; the trajectory must still be
	// well-formed: the origin plus the closing timestamp, both at (0,0).
	cfg := sensor.DefaultConfig()
	profile := []sensor.MotionSample{
		{T: 0, Pos: geom.P(2, 3), Heading: 1, Walking: false},
		{T: 10, Pos: geom.P(2, 3), Heading: 1, Walking: false},
	}
	samples, err := sensor.Simulate(profile, cfg, mathx.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DeadReckon(samples, cfg.StepLengthEst)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("stationary trajectory has %d points, want 2 (origin + final timestamp)", tr.Len())
	}
	if tr.Points[0].T != samples[0].T || tr.Points[1].T != samples[len(samples)-1].T {
		t.Errorf("endpoints = %v..%v, want the capture's time span", tr.Points[0].T, tr.Points[1].T)
	}
	for _, p := range tr.Points {
		if p.Pos != (geom.Pt{}) {
			t.Errorf("stationary trajectory moved to %v", p.Pos)
		}
	}
	if tr.PathLength() != 0 {
		t.Errorf("stationary PathLength = %v, want 0", tr.PathLength())
	}
}

func TestTurnsDetectsCorner(t *testing.T) {
	// 10 m east then 8 m north at 0.4 m spacing: exactly one ~90° turn at
	// the corner, with approach/departure headings matching the legs.
	tr := &Trajectory{}
	pos := geom.Pt{}
	for i := 0; i < 25; i++ {
		tr.Points = append(tr.Points, Point{T: float64(len(tr.Points)), Pos: pos})
		pos = pos.Add(geom.P(0.4, 0))
	}
	for i := 0; i < 20; i++ {
		tr.Points = append(tr.Points, Point{T: float64(len(tr.Points)), Pos: pos})
		pos = pos.Add(geom.P(0, 0.4))
	}
	turns := tr.Turns(3, math.Pi/4, 1.5)
	if len(turns) != 1 {
		t.Fatalf("detected %d turns, want 1: %+v", len(turns), turns)
	}
	tn := turns[0]
	corner := geom.P(0.4*24, 0)
	if tn.Pos.Dist(corner) > 0.9 {
		t.Errorf("turn at %v, want near corner %v", tn.Pos, corner)
	}
	if math.Abs(mathx.AngleDiff(tn.In, 0)) > 0.2 {
		t.Errorf("approach heading = %v, want ≈0", tn.In)
	}
	if math.Abs(mathx.AngleDiff(tn.Out, math.Pi/2)) > 0.2 {
		t.Errorf("departure heading = %v, want ≈π/2", tn.Out)
	}
	// A straight line has no turns.
	straight := line(30, 1, geom.P(0.4, 0))
	if got := straight.Turns(3, math.Pi/4, 1.5); len(got) != 0 {
		t.Errorf("straight line produced %d turns", len(got))
	}
}

func TestDeadReckonValidation(t *testing.T) {
	if _, err := DeadReckon(nil, 0.7); err == nil {
		t.Error("empty IMU stream should error")
	}
	if _, err := DeadReckon([]sensor.Sample{{}}, -1); err == nil {
		t.Error("negative step length should error")
	}
}

func TestRMSETranslationInvariant(t *testing.T) {
	tr := line(10, 1, geom.P(1, 0))
	truth := func(t float64) geom.Pt { return geom.P(t+100, 50) }
	// Trajectory is exactly the truth shifted by (100, 50): RMSE must be ~0.
	if got := RMSE(tr, truth); got > 1e-9 {
		t.Errorf("RMSE after alignment = %v, want 0", got)
	}
	if got := RMSE(&Trajectory{}, truth); got != 0 {
		t.Errorf("empty RMSE = %v", got)
	}
}

func TestResampleByDistance(t *testing.T) {
	// 10 m straight line walked over 10 s, plus a 5 s stationary pause in
	// the middle.
	tr := &Trajectory{ID: "d"}
	tr.Points = append(tr.Points,
		Point{T: 0, Pos: geom.P(0, 0)},
		Point{T: 5, Pos: geom.P(5, 0)},
		Point{T: 10, Pos: geom.P(5, 0)}, // pause
		Point{T: 15, Pos: geom.P(10, 0)},
	)
	rs, err := tr.ResampleByDistance(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 10 m of arc length at 0.5 m steps → 21 points (including start); the
	// pause must not add any.
	if rs.Len() != 21 {
		t.Fatalf("resampled to %d points, want 21", rs.Len())
	}
	for i := 1; i < rs.Len(); i++ {
		d := rs.Points[i].Pos.Dist(rs.Points[i-1].Pos)
		if math.Abs(d-0.5) > 1e-9 {
			t.Fatalf("step %d spacing = %v, want 0.5", i, d)
		}
	}
	if _, err := tr.ResampleByDistance(0); err == nil {
		t.Error("zero step should error")
	}
	var empty Trajectory
	rs2, err := empty.ResampleByDistance(0.5)
	if err != nil || rs2.Len() != 0 {
		t.Error("empty trajectory should resample to empty")
	}
}

func TestResampleByDistanceStationaryCollapses(t *testing.T) {
	// A pure spin (no movement) collapses to its single start point — the
	// property the LCS depends on.
	tr := &Trajectory{}
	for i := 0; i <= 20; i++ {
		tr.Points = append(tr.Points, Point{T: float64(i), Pos: geom.P(3, 4)})
	}
	rs, err := tr.ResampleByDistance(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Errorf("stationary trajectory resampled to %d points, want 1", rs.Len())
	}
}

func TestPositions(t *testing.T) {
	tr := line(4, 1, geom.P(1, 2))
	ps := tr.Positions()
	if len(ps) != 4 {
		t.Fatalf("Positions = %d", len(ps))
	}
	if ps[3] != geom.P(3, 6) {
		t.Errorf("last position = %v", ps[3])
	}
}
