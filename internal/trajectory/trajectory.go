// Package trajectory defines the user-trajectory representation at the core
// of CrowdMap's path modeling: the sequence of (x_i, y_i, t_i) triples the
// paper's Section III-A derives from the SWS micro-task, plus dead
// reckoning from IMU data and geometric utilities (resampling, translation
// search) used by the aggregation stage.
package trajectory

import (
	"fmt"
	"math"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/sensor"
)

// Point is one trajectory triple: a position in the user's local
// coordinate frame at time T.
type Point struct {
	T   float64
	Pos geom.Pt
}

// Trajectory is a time-ordered sequence of points, the unit of aggregation
// in the indoor path modeling module. ID identifies the contributing
// capture session.
type Trajectory struct {
	ID     string
	Points []Point
}

// Len returns the number of trajectory points.
func (tr *Trajectory) Len() int { return len(tr.Points) }

// Duration returns the time span covered.
func (tr *Trajectory) Duration() float64 {
	if len(tr.Points) < 2 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T - tr.Points[0].T
}

// PathLength returns the cumulative traveled distance.
func (tr *Trajectory) PathLength() float64 {
	var s float64
	for i := 1; i < len(tr.Points); i++ {
		s += tr.Points[i].Pos.Dist(tr.Points[i-1].Pos)
	}
	return s
}

// Translate returns a copy with every position shifted by d.
func (tr *Trajectory) Translate(d geom.Pt) *Trajectory {
	out := &Trajectory{ID: tr.ID, Points: make([]Point, len(tr.Points))}
	for i, p := range tr.Points {
		out.Points[i] = Point{T: p.T, Pos: p.Pos.Add(d)}
	}
	return out
}

// PositionAt linearly interpolates the position at time t, clamping to the
// endpoints outside the covered span.
func (tr *Trajectory) PositionAt(t float64) (geom.Pt, error) {
	if len(tr.Points) == 0 {
		return geom.Pt{}, fmt.Errorf("trajectory: empty trajectory %q", tr.ID)
	}
	if t <= tr.Points[0].T {
		return tr.Points[0].Pos, nil
	}
	for i := 1; i < len(tr.Points); i++ {
		if tr.Points[i].T >= t {
			a, b := tr.Points[i-1], tr.Points[i]
			span := b.T - a.T
			if span <= 0 {
				return b.Pos, nil
			}
			f := (t - a.T) / span
			return a.Pos.Add(b.Pos.Sub(a.Pos).Scale(f)), nil
		}
	}
	return tr.Points[len(tr.Points)-1].Pos, nil
}

// Resample returns a copy sampled at fixed time intervals dt, which the
// LCS-based sequence comparison requires (the |i-j| < δ window in the
// paper's L metric assumes comparable indices).
//
// Sample times are indexed (t0 + i·dt) rather than accumulated (t += dt):
// accumulation compounds floating-point error over long captures, drifting
// samples off-grid and making the final sample flicker against the
// end-of-span guard. Queries are monotone, so a single cursor over the
// source points replaces a full interpolation rescan per sample.
func (tr *Trajectory) Resample(dt float64) (*Trajectory, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("trajectory: resample interval must be positive, got %g", dt)
	}
	out := &Trajectory{ID: tr.ID}
	if len(tr.Points) == 0 {
		return out, nil
	}
	t0 := tr.Points[0].T
	t1 := tr.Points[len(tr.Points)-1].T
	n := int(math.Floor((t1 - t0 + 1e-9) / dt))
	out.Points = make([]Point, 0, n+1)
	seg := 1
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*dt
		var pos geom.Pt
		if t <= tr.Points[0].T {
			pos = tr.Points[0].Pos
		} else {
			for seg < len(tr.Points) && tr.Points[seg].T < t {
				seg++
			}
			if seg >= len(tr.Points) {
				pos = tr.Points[len(tr.Points)-1].Pos
			} else {
				a, b := tr.Points[seg-1], tr.Points[seg]
				if span := b.T - a.T; span <= 0 {
					pos = b.Pos
				} else {
					f := (t - a.T) / span
					pos = a.Pos.Add(b.Pos.Sub(a.Pos).Scale(f))
				}
			}
		}
		out.Points = append(out.Points, Point{T: t, Pos: pos})
	}
	return out, nil
}

// ResampleByDistance returns a copy sampled every step meters of traveled
// arc length. Stationary periods collapse to a single point, which is what
// the sequence-matching LCS needs: two users pausing in place must not
// manufacture arbitrarily long "common paths".
func (tr *Trajectory) ResampleByDistance(step float64) (*Trajectory, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trajectory: resample step must be positive, got %g", step)
	}
	out := &Trajectory{ID: tr.ID}
	if len(tr.Points) == 0 {
		return out, nil
	}
	out.Points = append(out.Points, tr.Points[0])
	carried := 0.0
	for i := 1; i < len(tr.Points); i++ {
		a := tr.Points[i-1]
		b := tr.Points[i]
		segLen := a.Pos.Dist(b.Pos)
		if segLen < 1e-12 {
			continue
		}
		for carried+segLen >= step {
			take := step - carried
			f := take / segLen
			p := Point{
				T:   a.T + (b.T-a.T)*f,
				Pos: a.Pos.Add(b.Pos.Sub(a.Pos).Scale(f)),
			}
			out.Points = append(out.Points, p)
			a = p
			segLen -= take
			carried = 0
		}
		carried += segLen
	}
	return out, nil
}

// Positions returns just the positions.
func (tr *Trajectory) Positions() []geom.Pt {
	out := make([]geom.Pt, len(tr.Points))
	for i, p := range tr.Points {
		out[i] = p.Pos
	}
	return out
}

// DeadReckon reconstructs a trajectory from an IMU stream: steps come from
// the step detector, heading from the gyro+compass complementary filter,
// and each detected step advances the position by stepLength in the current
// heading — the paper's SWS trajectory construction. The returned
// trajectory starts at the origin of the user's local frame.
func DeadReckon(samples []sensor.Sample, stepLength float64) (*Trajectory, error) {
	if stepLength <= 0 {
		return nil, fmt.Errorf("trajectory: step length must be positive, got %g", stepLength)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("trajectory: empty IMU stream")
	}
	headings := sensor.EstimateHeadings(samples)
	steps := sensor.NewStepDetector().Detect(samples)
	tr := &Trajectory{}
	pos := geom.Pt{}
	tr.Points = append(tr.Points, Point{T: samples[0].T, Pos: pos})
	si := 0
	for _, stepT := range steps {
		// Heading at the step time: sample index by time.
		for si+1 < len(samples) && samples[si+1].T <= stepT {
			si++
		}
		h := headings[si]
		pos = pos.Add(geom.FromPolar(stepLength, h))
		tr.Points = append(tr.Points, Point{T: stepT, Pos: pos})
	}
	// Close with the final timestamp so duration reflects the capture. The
	// origin point is always present, so a stationary capture (zero detected
	// steps) still yields origin + final timestamp.
	last := samples[len(samples)-1].T
	if tr.Points[len(tr.Points)-1].T < last {
		tr.Points = append(tr.Points, Point{T: last, Pos: pos})
	}
	return tr, nil
}

// Turn is a sustained heading change along a trajectory — the
// trajectory-only counterpart of a visual anchor. Hallway walks turn at
// corners and doorways, which are fixed features of the building, so two
// users passing the same corner produce turns at the same world position
// even though their dead-reckoned frames share only orientation (via the
// compass), not origin.
type Turn struct {
	// Index is the turning point's index in Points.
	Index int
	// Pos is the turning point's position in the trajectory's local frame.
	Pos geom.Pt
	// In and Out are the mean approach and departure headings, radians,
	// averaged over the detection window on each side.
	In, Out float64
}

// Turns detects turn points: indices where the mean heading over the
// window segments after differs from the mean heading over the window
// segments before by at least minAngle radians. Detections are local
// maxima of the heading change and at least minSep meters of arc length
// apart. Call it on a distance-resampled trajectory so the window spans a
// consistent length of path.
func (tr *Trajectory) Turns(window int, minAngle, minSep float64) []Turn {
	if window < 1 {
		window = 1
	}
	n := len(tr.Points)
	if n < 2*window+1 {
		return nil
	}
	// Unit direction of each segment i → i+1. Zero-length segments keep a
	// zero vector and simply do not contribute to the window means.
	dirX := make([]float64, n-1)
	dirY := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		d := tr.Points[i+1].Pos.Sub(tr.Points[i].Pos)
		if norm := d.Norm(); norm > 0 {
			dirX[i] = d.X / norm
			dirY[i] = d.Y / norm
		}
	}
	// Mean heading via the unit-vector sum, which is wraparound-safe.
	meanHeading := func(lo, hi int) (float64, bool) {
		var sx, sy float64
		for i := lo; i < hi; i++ {
			sx += dirX[i]
			sy += dirY[i]
		}
		if sx == 0 && sy == 0 {
			return 0, false
		}
		return math.Atan2(sy, sx), true
	}
	diff := make([]float64, n) // |heading change| per interior point, -1 where undefined
	for i := range diff {
		diff[i] = -1
	}
	for i := window; i <= n-1-window; i++ {
		in, okIn := meanHeading(i-window, i)
		out, okOut := meanHeading(i, i+window)
		if okIn && okOut {
			diff[i] = math.Abs(mathx.AngleDiff(out, in))
		}
	}
	arc := make([]float64, n)
	for i := 1; i < n; i++ {
		arc[i] = arc[i-1] + tr.Points[i].Pos.Dist(tr.Points[i-1].Pos)
	}
	var turns []Turn
	lastArc := math.Inf(-1)
	for i := window; i <= n-1-window; i++ {
		d := diff[i]
		if d < minAngle {
			continue
		}
		// Local maximum over the window; ties resolve to the earliest index.
		isMax := true
		for j := i - window; j <= i+window && isMax; j++ {
			if j == i {
				continue
			}
			if diff[j] > d || (diff[j] == d && j < i) {
				isMax = false
			}
		}
		if !isMax || arc[i]-lastArc < minSep {
			continue
		}
		lastArc = arc[i]
		in, _ := meanHeading(i-window, i)
		out, _ := meanHeading(i, i+window)
		turns = append(turns, Turn{Index: i, Pos: tr.Points[i].Pos, In: in, Out: out})
	}
	return turns
}

// RMSE computes the root-mean-square position error between a trajectory
// and ground-truth positions sampled at the same times, after optimal
// translation alignment (local frames share orientation via the compass but
// not origin). truth must supply a position for each trajectory point time.
func RMSE(tr *Trajectory, truth func(t float64) geom.Pt) float64 {
	n := len(tr.Points)
	if n == 0 {
		return 0
	}
	// Optimal translation for squared error is the mean offset.
	var off geom.Pt
	for _, p := range tr.Points {
		off = off.Add(truth(p.T).Sub(p.Pos))
	}
	off = off.Scale(1 / float64(n))
	var s float64
	for _, p := range tr.Points {
		d := p.Pos.Add(off).Dist(truth(p.T))
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}
