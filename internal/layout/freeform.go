package layout

import (
	"fmt"
	"math"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/vision/pano"
)

// Freeform is a non-rectangular room reconstruction: the paper's Section
// VI future-work item. Instead of fitting the 2-D rectangular model, the
// per-azimuth wall distances observed in the panorama are used directly as
// a star-shaped boundary around the camera, rasterized and traced into a
// rectilinear-ish polygon. It handles any room whose walls are all visible
// from the capture point (L-shapes, T-shapes); the rectangular estimator
// remains the default because ~90% of rooms are rectangular (the paper
// cites Steadman 2006).
type Freeform struct {
	// Boundary is the traced room outline in the camera's local frame
	// (camera at the origin).
	Boundary geom.Polygon
	// Res is the rasterization cell size used during tracing, meters.
	Res float64
}

// Area returns the enclosed area in m².
func (f Freeform) Area() float64 { return f.Boundary.Area() }

// Contains reports whether p (camera-local) lies inside the room.
func (f Freeform) Contains(p geom.Pt) bool { return f.Boundary.Contains(p) }

// FreeformFromDistances reconstructs the star-shaped region enclosed by
// per-azimuth wall distances. phis and dists pair up; gaps (dist ≤ 0) are
// interpolated from their angular neighbors. res is the rasterization cell
// size; smooth is the half-width (in samples) of the median filter applied
// to the distance function before tracing.
func FreeformFromDistances(phis, dists []float64, res float64, smooth int) (Freeform, error) {
	if len(phis) != len(dists) {
		return Freeform{}, fmt.Errorf("layout: %d azimuths vs %d distances", len(phis), len(dists))
	}
	if len(phis) < 8 {
		return Freeform{}, fmt.Errorf("layout: need at least 8 boundary samples, got %d", len(phis))
	}
	if res <= 0 {
		return Freeform{}, fmt.Errorf("layout: resolution must be positive, got %g", res)
	}
	n := len(phis)
	d := make([]float64, n)
	copy(d, dists)
	// Fill gaps by circular linear interpolation.
	if err := fillGaps(d); err != nil {
		return Freeform{}, err
	}
	// Circular median filter suppresses single-column outliers (doors,
	// furniture edges).
	if smooth > 0 {
		d = circularMedian(d, smooth)
	}
	// Boundary polygon directly from the polar samples.
	pts := make([]geom.Pt, n)
	maxD := 0.0
	for i := range d {
		pts[i] = geom.FromPolar(d[i], phis[i])
		if d[i] > maxD {
			maxD = d[i]
		}
	}
	poly := geom.NewPolygon(pts)
	// Simplify: drop vertices that deviate from the line joining their
	// neighbors by less than half a cell (Douglas-Peucker-lite pass).
	simplified := simplifyPolygon(poly.Vertices, res/2)
	if len(simplified) < 4 {
		return Freeform{}, fmt.Errorf("layout: boundary degenerated to %d vertices", len(simplified))
	}
	return Freeform{Boundary: geom.NewPolygon(simplified), Res: res}, nil
}

// fillGaps replaces non-positive entries by interpolating circularly
// between the nearest positive neighbors.
func fillGaps(d []float64) error {
	n := len(d)
	valid := 0
	for _, v := range d {
		if v > 0 {
			valid++
		}
	}
	if valid == 0 {
		return fmt.Errorf("layout: no valid boundary samples")
	}
	if valid == n {
		return nil
	}
	for i := 0; i < n; i++ {
		if d[i] > 0 {
			continue
		}
		// Nearest valid sample in each direction.
		var li, ri int
		var lv, rv float64
		for k := 1; k < n; k++ {
			j := (i - k + n*8) % n
			if d[j] > 0 {
				li, lv = k, d[j]
				break
			}
		}
		for k := 1; k < n; k++ {
			j := (i + k) % n
			if d[j] > 0 {
				ri, rv = k, d[j]
				break
			}
		}
		d[i] = (lv*float64(ri) + rv*float64(li)) / float64(li+ri)
	}
	return nil
}

// circularMedian applies a median filter with circular wraparound.
func circularMedian(d []float64, half int) []float64 {
	n := len(d)
	out := make([]float64, n)
	win := make([]float64, 0, 2*half+1)
	for i := 0; i < n; i++ {
		win = win[:0]
		for k := -half; k <= half; k++ {
			win = append(win, d[(i+k+n*8)%n])
		}
		out[i] = mathx.Median(win)
	}
	return out
}

// simplifyPolygon removes near-collinear vertices (closed-ring variant).
func simplifyPolygon(vs []geom.Pt, tol float64) []geom.Pt {
	n := len(vs)
	if n < 4 {
		return vs
	}
	keep := make([]bool, n)
	for i := 0; i < n; i++ {
		prev := vs[(i-1+n)%n]
		next := vs[(i+1)%n]
		seg := geom.Seg{A: prev, B: next}
		if seg.DistToPoint(vs[i]) > tol {
			keep[i] = true
		}
	}
	// Always keep at least every 8th vertex so long smooth arcs survive.
	for i := 0; i < n; i += 8 {
		keep[i] = true
	}
	var out []geom.Pt
	for i, k := range keep {
		if k {
			out = append(out, vs[i])
		}
	}
	return out
}

// EstimateFreeform reconstructs a non-rectangular room boundary from a
// panorama. It shares the boundary extraction of the rectangular
// estimator; columns without a decisive boundary are treated as gaps and
// interpolated.
func EstimateFreeform(pn *pano.Panorama, p Params) (Freeform, error) {
	if err := p.Validate(); err != nil {
		return Freeform{}, err
	}
	bd := estimateBoundary(pn, p.CameraHeight)
	usable := 0
	n := pn.Image.W
	phis := make([]float64, 0, n)
	dists := make([]float64, 0, n)
	for u := 0; u < n; u++ {
		phis = append(phis, pn.AzimuthOf(u))
		if bd.strong[u] && bd.dist[u] > 0 && bd.dist[u] <= p.MaxWall {
			dists = append(dists, bd.dist[u])
			usable++
		} else {
			dists = append(dists, 0)
		}
	}
	if usable < n/4 {
		return Freeform{}, fmt.Errorf("layout: boundary visible in only %d of %d columns", usable, n)
	}
	return FreeformFromDistances(phis, dists, 0.2, 5)
}

// RectangularityScore compares a freeform boundary against the best
// rectangular model: the area of the symmetric difference divided by the
// rectangle area. Values near 0 mean the room is effectively rectangular
// and the rectangular estimator should be preferred.
func RectangularityScore(f Freeform, l Layout) float64 {
	rect := geom.NewPolygon([]geom.Pt{
		geom.P(l.DXPlus, l.DYPlus), geom.P(-l.DXMinus, l.DYPlus),
		geom.P(-l.DXMinus, -l.DYMinus), geom.P(l.DXPlus, -l.DYMinus),
	})
	rect = rect.RotateAbout(geom.Pt{}, l.Theta)
	inter := geom.IntersectionArea(f.Boundary, rect, 0.2)
	union := f.Area() + rect.Area() - inter
	if union <= 0 {
		return math.Inf(1)
	}
	return (union - inter) / rect.Area()
}
