package layout

import (
	"math"
	"testing"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/world"
)

// polarDistances computes d(φ) from an interior camera point to a polygon
// boundary by ray casting, for n azimuths.
func polarDistances(poly geom.Polygon, cam geom.Pt, n int) (phis, dists []float64) {
	for i := 0; i < n; i++ {
		phi := 2 * math.Pi * float64(i) / float64(n)
		far := cam.Add(geom.FromPolar(1000, phi))
		ray := geom.Seg{A: cam, B: far}
		best := math.Inf(1)
		for _, e := range poly.Edges() {
			if p, ok := ray.Intersect(e); ok {
				if d := cam.Dist(p); d < best {
					best = d
				}
			}
		}
		phis = append(phis, phi)
		if math.IsInf(best, 1) {
			dists = append(dists, 0)
		} else {
			dists = append(dists, best)
		}
	}
	return phis, dists
}

func lRoom() geom.Polygon {
	// 8×6 L with a 4×3 notch cut from the top-right: area 48−12 = 36.
	return geom.NewPolygon([]geom.Pt{
		{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 8, Y: 3}, {X: 4, Y: 3}, {X: 4, Y: 6}, {X: 0, Y: 6},
	})
}

func TestFreeformFromDistancesValidation(t *testing.T) {
	if _, err := FreeformFromDistances([]float64{1}, []float64{1, 2}, 0.2, 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FreeformFromDistances(make([]float64, 4), make([]float64, 4), 0.2, 2); err == nil {
		t.Error("too few samples should error")
	}
	phis := make([]float64, 16)
	if _, err := FreeformFromDistances(phis, make([]float64, 16), 0, 2); err == nil {
		t.Error("zero resolution should error")
	}
	if _, err := FreeformFromDistances(phis, make([]float64, 16), 0.2, 2); err == nil {
		t.Error("all-gap distances should error")
	}
}

func TestFreeformReconstructsLShape(t *testing.T) {
	room := lRoom()
	cam := geom.P(2, 2) // sees every wall of the L
	phis, dists := polarDistances(room, cam, 360)
	f, err := FreeformFromDistances(phis, dists, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantArea := room.Area() // 36
	if math.Abs(f.Area()-wantArea) > 0.1*wantArea {
		t.Errorf("freeform area = %.1f, want ≈%.1f", f.Area(), wantArea)
	}
	// The notch must be excluded: a camera-local point inside the notch
	// region (world (6, 4.5) → local (4, 2.5)) is outside the room.
	if f.Contains(geom.P(4, 2.5)) {
		t.Error("freeform filled the L notch")
	}
	// And an in-room point near the far leg is included (world (6,1.5) →
	// local (4,-0.5)).
	if !f.Contains(geom.P(4, -0.5)) {
		t.Error("freeform lost the L leg")
	}
}

func TestFreeformInterpolatesGaps(t *testing.T) {
	room := lRoom()
	cam := geom.P(2, 2)
	phis, dists := polarDistances(room, cam, 360)
	// Knock out a 30° contiguous gap and some scattered samples.
	for i := 40; i < 70; i++ {
		dists[i] = 0
	}
	for i := 100; i < 360; i += 17 {
		dists[i] = 0
	}
	f, err := FreeformFromDistances(phis, dists, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Area()-room.Area()) > 0.15*room.Area() {
		t.Errorf("gap-filled area = %.1f, want ≈%.1f", f.Area(), room.Area())
	}
}

func TestFreeformMedianSuppressesOutliers(t *testing.T) {
	room := lRoom()
	cam := geom.P(2, 2)
	phis, dists := polarDistances(room, cam, 360)
	rng := mathx.NewRNG(4)
	// Corrupt 5% of samples with wild distances (open doors, mirrors).
	for k := 0; k < 18; k++ {
		dists[rng.Intn(len(dists))] *= 4
	}
	f, err := FreeformFromDistances(phis, dists, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Area()-room.Area()) > 0.15*room.Area() {
		t.Errorf("outlier-corrupted area = %.1f, want ≈%.1f", f.Area(), room.Area())
	}
}

// On a rendered rectangular room, the freeform estimate should roughly
// agree with the rectangular estimator and score as rectangular.
func TestEstimateFreeformAgreesOnRectangularRoom(t *testing.T) {
	b := world.Lab1()
	room := b.Rooms[2]
	pn := renderRoomPano(t, b, room.Bounds.Center())
	p := DefaultParams()
	p.CameraHeight = b.CameraHeight
	p.Hypotheses = 3000
	f, err := EstimateFreeform(pn, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Area()-room.Area()) > 0.3*room.Area() {
		t.Errorf("freeform area = %.1f, truth %.1f", f.Area(), room.Area())
	}
	l, err := Estimate(pn, p, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	score := RectangularityScore(f, l)
	if score > 0.5 {
		t.Errorf("rectangular room scored %.2f, want near 0", score)
	}
}

func TestRectangularityScoreDetectsNonRect(t *testing.T) {
	room := lRoom()
	cam := geom.P(2, 2)
	phis, dists := polarDistances(room, cam, 360)
	f, err := FreeformFromDistances(phis, dists, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Best-effort rectangle for the L (covering the bounding box).
	l := Layout{Theta: 0, DXMinus: 2, DXPlus: 6, DYMinus: 2, DYPlus: 4}
	score := RectangularityScore(f, l)
	if score < 0.15 {
		t.Errorf("L-shaped room scored %.2f, should be clearly non-rectangular", score)
	}
}
