// Package layout reconstructs a room's 2-D rectangular layout from a 360°
// panorama (paper Section III-C.II): line segments detected in the
// panorama (LSD) yield wall-corner candidates, the dominant directions act
// as vanishing directions (Hough-style voting), thousands of rectangular
// room hypotheses are sampled around those cues — the paper samples 20,000
// models — and each is scored by pixel-wise surface consistency between
// the hypothesis-predicted wall/floor boundary and the observed panorama
// surfaces, in the spirit of PanoContext. The best-scoring model becomes
// the room layout.
package layout

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/vision/lsd"
	"crowdmap/internal/vision/pano"
)

// Layout is a reconstructed rectangular room model in the camera's local
// frame: the camera stands at the origin, the rectangle spans
// [-DXMinus, DXPlus] × [-DYMinus, DYPlus] in a frame rotated by Theta.
type Layout struct {
	Theta           float64 // wall orientation, radians in [0, π/2)
	DXMinus, DXPlus float64 // distances to the two walls along the rotated x axis
	DYMinus, DYPlus float64 // distances along the rotated y axis
	Score           float64 // surface-consistency score in [0, 1]
}

// Width returns the rectangle's extent along the rotated x axis.
func (l Layout) Width() float64 { return l.DXMinus + l.DXPlus }

// Length returns the rectangle's extent along the rotated y axis.
func (l Layout) Length() float64 { return l.DYMinus + l.DYPlus }

// Area returns the room area in m².
func (l Layout) Area() float64 { return l.Width() * l.Length() }

// AspectRatio returns long side / short side (≥ 1).
func (l Layout) AspectRatio() float64 {
	w, h := l.Width(), l.Length()
	lo, hi := math.Min(w, h), math.Max(w, h)
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// CenterOffset returns the room center relative to the camera position, in
// the camera's (unrotated) frame.
func (l Layout) CenterOffset() geom.Pt {
	c := geom.P((l.DXPlus-l.DXMinus)/2, (l.DYPlus-l.DYMinus)/2)
	return c.Rotate(l.Theta)
}

// WallDistance returns the distance from the camera to the rectangle
// boundary along azimuth phi.
func (l Layout) WallDistance(phi float64) float64 {
	// Rotate the ray into the rectangle frame.
	a := phi - l.Theta
	c, s := math.Cos(a), math.Sin(a)
	tx := math.Inf(1)
	if c > 1e-9 {
		tx = l.DXPlus / c
	} else if c < -1e-9 {
		tx = l.DXMinus / -c
	}
	ty := math.Inf(1)
	if s > 1e-9 {
		ty = l.DYPlus / s
	} else if s < -1e-9 {
		ty = l.DYMinus / -s
	}
	return math.Min(tx, ty)
}

// Params tunes layout estimation.
type Params struct {
	// CameraHeight is the assumed camera height above the floor, meters.
	CameraHeight float64
	// Hypotheses is the number of sampled room models (paper: 20,000).
	Hypotheses int
	// MinWall, MaxWall bound sampled camera-to-wall distances, meters.
	MinWall, MaxWall float64
	// ColumnStride subsamples panorama columns during scoring.
	ColumnStride int
	// Seed drives hypothesis sampling.
	Seed int64
	// LSD configures segment detection on the panorama.
	LSD lsd.Params
}

// DefaultParams matches the paper's hypothesis count.
func DefaultParams() Params {
	return Params{
		CameraHeight: 1.5,
		Hypotheses:   20000,
		MinWall:      0.8,
		MaxWall:      30,
		ColumnStride: 4,
		Seed:         1,
		LSD:          lsd.DefaultParams(),
	}
}

// Validate checks estimation parameters.
func (p Params) Validate() error {
	if p.CameraHeight <= 0 {
		return fmt.Errorf("layout: camera height must be positive, got %g", p.CameraHeight)
	}
	if p.Hypotheses < 1 {
		return fmt.Errorf("layout: need at least one hypothesis, got %d", p.Hypotheses)
	}
	if p.MinWall <= 0 || p.MaxWall <= p.MinWall {
		return fmt.Errorf("layout: invalid wall distance bounds [%g, %g]", p.MinWall, p.MaxWall)
	}
	if p.ColumnStride < 1 {
		return fmt.Errorf("layout: column stride must be ≥ 1, got %d", p.ColumnStride)
	}
	return nil
}

// boundary holds the observed wall-floor boundary per panorama column.
type boundary struct {
	row  []float64 // boundary row per column (-1 when not found)
	dist []float64 // implied wall distance per column (0 when not found)
	conf []float64 // edge strength per column
	// strong marks columns whose boundary edge is decisively stronger than
	// wall texture; weak columns usually mean the wall is so close that the
	// true boundary falls below the panorama's bottom edge.
	strong []bool
	// confMed is the median confidence over columns with a boundary.
	confMed float64
}

// estimateBoundary finds, per column, the strongest downward dark
// transition below the horizon — the wall→floor boundary.
func estimateBoundary(pn *pano.Panorama, camH float64) *boundary {
	im := pn.Image.Luma()
	w, h := im.W, im.H
	b := &boundary{
		row:  make([]float64, w),
		dist: make([]float64, w),
		conf: make([]float64, w),
	}
	horizon := int(pn.RowOfTanElev(0))
	if horizon < 0 {
		horizon = 0
	}
	for u := 0; u < w; u++ {
		b.row[u] = -1
		bestG := 0.0
		bestV := -1
		for v := horizon + 2; v < h-2; v++ {
			if !pn.IsCovered(u, v-2) || !pn.IsCovered(u, v+2) {
				continue
			}
			// Smoothed vertical gradient (wall above brighter than floor
			// below in indoor scenes; use absolute change to stay neutral).
			above := (im.At(u, v-1) + im.At(u, v-2)) / 2
			below := (im.At(u, v+1) + im.At(u, v+2)) / 2
			g := math.Abs(above - below)
			if g > bestG {
				bestG = g
				bestV = v
			}
		}
		if bestV < 0 {
			continue
		}
		t := pn.TanElevOf(bestV)
		if t >= -1e-3 {
			continue // boundary must be below the horizon
		}
		b.row[u] = float64(bestV)
		b.dist[u] = -camH / t
		b.conf[u] = bestG
	}
	var confs []float64
	for u := range b.row {
		if b.row[u] >= 0 {
			confs = append(confs, b.conf[u])
		}
	}
	b.confMed = mathx.Median(confs)
	b.strong = make([]bool, w)
	for u := range b.row {
		b.strong[u] = b.row[u] >= 0 && b.conf[u] >= 0.6*b.confMed
	}
	return b
}

// cornerAzimuths clusters near-vertical panorama segments into corner
// candidates (wall corners project to vertical lines in a cylindrical
// panorama) and returns their azimuths.
func cornerAzimuths(pn *pano.Panorama, segs []lsd.Segment) []float64 {
	type cand struct {
		u float64
		w float64
	}
	var cands []cand
	for _, s := range segs {
		ang := s.Angle()
		// Vertical in image space: angle near π/2.
		if math.Abs(ang-math.Pi/2) > mathx.Deg2Rad(12) {
			continue
		}
		if s.Len() < 10 {
			continue
		}
		cands = append(cands, cand{u: (s.A.X + s.B.X) / 2, w: s.Len()})
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].u < cands[j].u })
	// Merge candidates within ~3° of panorama width.
	mergeTol := float64(pn.Image.W) / 120
	var out []float64
	i := 0
	for i < len(cands) {
		j := i
		var sumU, sumW float64
		for j < len(cands) && cands[j].u-cands[i].u <= mergeTol {
			sumU += cands[j].u * cands[j].w
			sumW += cands[j].w
			j++
		}
		col := sumU / sumW
		out = append(out, pn.AzimuthOf(int(col)))
		i = j
	}
	return out
}

// Estimate reconstructs the room layout from a panorama.
func Estimate(pn *pano.Panorama, p Params, rng *rand.Rand) (Layout, error) {
	if err := p.Validate(); err != nil {
		return Layout{}, err
	}
	if rng == nil {
		rng = mathx.NewRNG(p.Seed)
	}
	bd := estimateBoundary(pn, p.CameraHeight)
	// Require a decisive boundary over at least a quarter of the circle.
	usable := 0
	for u := range bd.row {
		if bd.strong[u] {
			usable++
		}
	}
	if usable < pn.Image.W/4 {
		return Layout{}, fmt.Errorf("layout: wall-floor boundary visible in only %d of %d columns", usable, pn.Image.W)
	}
	segs, err := lsd.Detect(pn.Image.Luma(), p.LSD)
	if err != nil {
		return Layout{}, fmt.Errorf("layout: segment detection: %w", err)
	}
	corners := cornerAzimuths(pn, segs)
	thetas := thetaCandidates(corners, bd, pn)

	best := Layout{Score: -1}
	for i := 0; i < p.Hypotheses; i++ {
		var theta float64
		if len(thetas) > 0 && rng.Float64() < 0.7 {
			theta = thetas[rng.Intn(len(thetas))] + rng.NormFloat64()*mathx.Deg2Rad(4)
		} else {
			theta = rng.Float64() * math.Pi / 2
		}
		theta = math.Mod(theta, math.Pi/2)
		if theta < 0 {
			theta += math.Pi / 2
		}
		l := sampleDistances(theta, bd, pn, p, rng)
		l.Score = score(l, bd, pn, p)
		if l.Score > best.Score {
			best = l
		}
	}
	if best.Score < 0 {
		return Layout{}, fmt.Errorf("layout: no valid hypothesis found")
	}
	return best, nil
}

// thetaCandidates derives wall-orientation candidates from corner azimuth
// pairs: two adjacent corners with measured distances give a wall segment
// whose direction is a vanishing-direction estimate.
func thetaCandidates(corners []float64, bd *boundary, pn *pano.Panorama) []float64 {
	var out []float64
	n := len(corners)
	for i := 0; i < n; i++ {
		phiA := corners[i]
		phiB := corners[(i+1)%n]
		da := distAt(bd, pn, phiA)
		db := distAt(bd, pn, phiB)
		if da <= 0 || db <= 0 {
			continue
		}
		va := geom.FromPolar(da, phiA)
		vb := geom.FromPolar(db, phiB)
		dir := vb.Sub(va).Angle()
		dir = math.Mod(dir, math.Pi/2)
		if dir < 0 {
			dir += math.Pi / 2
		}
		out = append(out, dir)
	}
	return out
}

func distAt(bd *boundary, pn *pano.Panorama, phi float64) float64 {
	u := int(math.Round(pn.ColOfAzimuth(phi)))
	if u < 0 {
		u = 0
	}
	if u >= len(bd.dist) {
		u = len(bd.dist) - 1
	}
	return bd.dist[u]
}

// sampleDistances draws the four wall distances: around the observed
// boundary statistics in each rotated half-axis direction when available,
// falling back to log-uniform sampling.
func sampleDistances(theta float64, bd *boundary, pn *pano.Panorama, p Params, rng *rand.Rand) Layout {
	// Gather observed distances projected on the rotated axes. Only
	// decisive boundary columns vote; weak columns are usually walls too
	// close for their boundary to be visible.
	var xm, xp, ym, yp []float64
	for u := 0; u < pn.Image.W; u += 2 {
		if bd.dist[u] <= 0 || !bd.strong[u] {
			continue
		}
		phi := pn.AzimuthOf(u)
		a := phi - theta
		d := bd.dist[u]
		x := d * math.Cos(a)
		y := d * math.Sin(a)
		// A boundary observation constrains the wall in its dominant
		// direction.
		if math.Abs(x) > math.Abs(y) {
			if x > 0 {
				xp = append(xp, x)
			} else {
				xm = append(xm, -x)
			}
		} else {
			if y > 0 {
				yp = append(yp, y)
			} else {
				ym = append(ym, -y)
			}
		}
	}
	dVis := p.MaxWall
	if pn.TMin < 0 {
		dVis = math.Min(p.MaxWall, p.CameraHeight/-pn.TMin)
	}
	draw := func(obs []float64) float64 {
		if len(obs) >= 5 && rng.Float64() < 0.8 {
			base := mathx.Median(obs)
			v := base * (1 + rng.NormFloat64()*0.12)
			return mathx.Clamp(v, p.MinWall, p.MaxWall)
		}
		// A quadrant without decisive boundary observations usually means
		// the wall is closer than the visibility limit; bias the fallback
		// toward that range but keep full-range exploration.
		if len(obs) < 5 && rng.Float64() < 0.6 {
			lo, hi := math.Log(p.MinWall), math.Log(dVis)
			return math.Exp(lo + rng.Float64()*(hi-lo))
		}
		lo, hi := math.Log(p.MinWall), math.Log(p.MaxWall)
		return math.Exp(lo + rng.Float64()*(hi-lo))
	}
	return Layout{
		Theta:   theta,
		DXMinus: draw(xm),
		DXPlus:  draw(xp),
		DYMinus: draw(ym),
		DYPlus:  draw(yp),
	}
}

// score computes the pixel-wise surface consistency of a hypothesis: for
// each sampled column the predicted boundary row splits the column into
// wall above and floor below; pixels agreeing with the observed boundary
// classification vote for the hypothesis.
func score(l Layout, bd *boundary, pn *pano.Panorama, p Params) float64 {
	var total, agree float64
	h := float64(pn.Image.H)
	// Walls closer than dVis project their boundary below the canvas.
	dVis := math.Inf(1)
	if pn.TMin < 0 {
		dVis = p.CameraHeight / -pn.TMin
	}
	for u := 0; u < pn.Image.W; u += p.ColumnStride {
		phi := pn.AzimuthOf(u)
		d := l.WallDistance(phi)
		if math.IsInf(d, 1) || d <= 0 {
			continue
		}
		if d < dVis {
			// Hypothesis predicts no visible boundary in this column: that
			// is consistent exactly when no decisive boundary was observed.
			w := bd.confMed
			if !bd.strong[u] {
				agree += w
			}
			total += w
			continue
		}
		if bd.row[u] < 0 {
			continue
		}
		if !bd.strong[u] {
			// Weak evidence contradicting a visible-boundary prediction:
			// count the column with a mild penalty through its low weight.
			total += bd.conf[u]
			continue
		}
		predRow := pn.RowOfTanElev(-p.CameraHeight / d)
		obsRow := bd.row[u]
		// Pixel-count agreement: the overlap of the wall (above boundary)
		// and floor (below) partitions implied by the predicted vs the
		// observed row. |pred − obs| rows disagree out of the column.
		diff := math.Abs(predRow - obsRow)
		if diff > h {
			diff = h
		}
		w := bd.conf[u]
		agree += w * (1 - diff/h)
		total += w
	}
	if total == 0 {
		return 0
	}
	return agree / total
}
