package layout

import (
	"math"
	"testing"

	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/vision/pano"
	"crowdmap/internal/world"
)

func TestLayoutGeometry(t *testing.T) {
	l := Layout{Theta: 0, DXMinus: 2, DXPlus: 3, DYMinus: 1, DYPlus: 2}
	if l.Width() != 5 || l.Length() != 3 {
		t.Errorf("Width/Length = %v/%v", l.Width(), l.Length())
	}
	if l.Area() != 15 {
		t.Errorf("Area = %v", l.Area())
	}
	if math.Abs(l.AspectRatio()-5.0/3) > 1e-12 {
		t.Errorf("AspectRatio = %v", l.AspectRatio())
	}
	off := l.CenterOffset()
	if off.Dist(geom.P(0.5, 0.5)) > 1e-12 {
		t.Errorf("CenterOffset = %v", off)
	}
}

func TestWallDistance(t *testing.T) {
	l := Layout{Theta: 0, DXMinus: 2, DXPlus: 3, DYMinus: 1, DYPlus: 4}
	tests := []struct {
		phiDeg float64
		want   float64
	}{
		{0, 3},               // +x wall
		{180, 2},             // −x wall
		{90, 4},              // +y wall
		{270, 1},             // −y wall
		{45, 3 * math.Sqrt2}, // hits +x wall at 45° before +y wall (3/cos45 < 4/sin45)
	}
	for _, tt := range tests {
		if got := l.WallDistance(mathx.Deg2Rad(tt.phiDeg)); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("WallDistance(%v°) = %v, want %v", tt.phiDeg, got, tt.want)
		}
	}
	// A degenerate layout never returns negative distances.
	if d := l.WallDistance(1.234); d <= 0 {
		t.Errorf("distance must be positive, got %v", d)
	}
}

func TestAspectRatioDegenerate(t *testing.T) {
	l := Layout{}
	if !math.IsInf(l.AspectRatio(), 1) {
		t.Error("zero layout aspect should be +Inf")
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"camera height", func(p *Params) { p.CameraHeight = 0 }},
		{"hypotheses", func(p *Params) { p.Hypotheses = 0 }},
		{"wall bounds", func(p *Params) { p.MinWall, p.MaxWall = 5, 2 }},
		{"stride", func(p *Params) { p.ColumnStride = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

// renderRoomPano stitches a panorama captured at pos inside building b.
func renderRoomPano(t *testing.T, b *world.Building, pos geom.Pt) *pano.Panorama {
	t.Helper()
	cam := world.DefaultCamera()
	r := world.NewRenderer(b, cam)
	pp := pano.DefaultParams()
	pp.FOV = cam.FOV
	pp.Pitch = cam.Pitch
	pp.OutW, pp.OutH = 480, 160
	var frames []pano.Frame
	for d := 0.0; d < 360; d += 20 {
		h := mathx.Deg2Rad(d)
		frames = append(frames, pano.Frame{
			Image:   r.Render(world.Pose{Pos: pos, Heading: h}, world.Daylight(), nil),
			Heading: h,
		})
	}
	pn, err := pano.Stitch(frames, pp)
	if err != nil {
		t.Fatal(err)
	}
	return pn
}

func TestEstimateRecoversRoomDimensions(t *testing.T) {
	b := world.Lab1()
	room := b.Rooms[2] // a 5×6 perimeter office
	pn := renderRoomPano(t, b, room.Bounds.Center())
	p := DefaultParams()
	p.CameraHeight = b.CameraHeight
	p.Hypotheses = 4000
	l, err := Estimate(pn, p, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	areaErr := math.Abs(l.Area()-room.Area()) / room.Area()
	if areaErr > 0.30 {
		t.Errorf("area = %.1f (want %.1f), error %.0f%%", l.Area(), room.Area(), areaErr*100)
	}
	wantAspect := room.AspectRatio()
	aspErr := math.Abs(l.AspectRatio()-wantAspect) / wantAspect
	if aspErr > 0.25 {
		t.Errorf("aspect = %.2f (want %.2f), error %.0f%%", l.AspectRatio(), wantAspect, aspErr*100)
	}
	// Walls are axis-aligned: theta near 0 or π/2 (same rectangle).
	th := math.Min(l.Theta, math.Abs(math.Pi/2-l.Theta))
	if th > mathx.Deg2Rad(10) {
		t.Errorf("theta = %.1f°, want ≈0°", mathx.Rad2Deg(l.Theta))
	}
	if l.Score <= 0.5 {
		t.Errorf("best score = %v, suspiciously low", l.Score)
	}
}

func TestEstimateOffCenterCamera(t *testing.T) {
	b := world.Lab1()
	room := b.Rooms[4]
	// Stand away from the center; the rectangle model must still fit and
	// the center offset should point back toward the true center.
	stand := room.Bounds.Center().Add(geom.P(0.8, -0.6))
	pn := renderRoomPano(t, b, stand)
	p := DefaultParams()
	p.CameraHeight = b.CameraHeight
	p.Hypotheses = 4000
	l, err := Estimate(pn, p, mathx.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	estCenter := stand.Add(l.CenterOffset())
	if d := estCenter.Dist(room.Bounds.Center()); d > 1.2 {
		t.Errorf("estimated center %v is %.2f m from truth %v", estCenter, d, room.Bounds.Center())
	}
}

func TestEstimateFailsWithoutBoundary(t *testing.T) {
	// A panorama with no coverage must be rejected.
	pn := renderRoomPano(t, world.Lab1(), world.Lab1().Rooms[0].Bounds.Center())
	for i := range pn.Covered {
		pn.Covered[i] = false
	}
	p := DefaultParams()
	p.Hypotheses = 10
	if _, err := Estimate(pn, p, mathx.NewRNG(11)); err == nil {
		t.Error("uncovered panorama should fail")
	}
}
