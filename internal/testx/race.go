//go:build race

package testx

// RaceEnabled reports whether the binary was built with -race. Tests
// asserting exact allocation counts (testing.AllocsPerRun) skip when it
// is set: the race runtime adds its own allocations and the bounds stop
// being meaningful.
const RaceEnabled = true
