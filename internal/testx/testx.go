// Package testx holds tiny helpers shared by test files across
// packages. It must stay dependency-free: anything here is imported by
// _test.go files only, never by production code.
package testx
