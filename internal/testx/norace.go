//go:build !race

package testx

// RaceEnabled reports whether the binary was built with -race; see
// race.go.
const RaceEnabled = false
