module crowdmap

go 1.22
