package crowdmap

import (
	"fmt"

	"crowdmap/internal/eval"
	"crowdmap/internal/geom"
)

// Report summarizes a reconstruction against ground truth, covering the
// paper's Table I and Fig. 8 metrics.
type Report struct {
	// Hallway is the hallway-shape precision/recall/F-measure (Table I).
	Hallway eval.PRF
	// AlignOffset is the translation that aligned the reconstruction to
	// ground truth.
	AlignOffset geom.Pt
	// Rooms holds per-room area/aspect/location errors (Fig. 8) for rooms
	// the pipeline reconstructed.
	Rooms []eval.RoomErrors
	// MeanAreaError, MeanAspectError, MeanLocationError aggregate Rooms.
	MeanAreaError     float64
	MeanAspectError   float64
	MeanLocationError float64
	// RoomsReconstructed / RoomsTotal report coverage.
	RoomsReconstructed, RoomsTotal int
}

// String renders a compact summary.
func (r Report) String() string {
	return fmt.Sprintf("hallway %s | rooms %d/%d | area err %.1f%% | aspect err %.1f%% | location err %.2f m",
		r.Hallway, r.RoomsReconstructed, r.RoomsTotal,
		r.MeanAreaError*100, r.MeanAspectError*100, r.MeanLocationError)
}

// Evaluate scores a reconstruction result against its ground-truth
// building.
func Evaluate(res *Result, b *Building) (Report, error) {
	if res == nil || res.Plan == nil {
		return Report{}, fmt.Errorf("crowdmap: nil result")
	}
	prf, off, err := eval.HallwayShapeScore(res.Plan, b, 0.25)
	if err != nil {
		return Report{}, fmt.Errorf("crowdmap: hallway score: %w", err)
	}
	rep := Report{
		Hallway:     prf,
		AlignOffset: off,
		RoomsTotal:  len(b.Rooms),
	}
	// Only score rooms carrying a ground-truth label (they all do when the
	// dataset came from the simulator).
	var labeled []PlacedRoom
	for _, room := range res.Plan.Rooms {
		if room.ID != "" {
			labeled = append(labeled, room)
		}
	}
	rep.RoomsReconstructed = len(labeled)
	if len(labeled) > 0 {
		rooms, err := eval.ScoreRooms(labeled, b, off)
		if err != nil {
			return Report{}, fmt.Errorf("crowdmap: room score: %w", err)
		}
		rep.Rooms = rooms
		rep.MeanAreaError = eval.MeanAreaError(rooms)
		rep.MeanAspectError = eval.MeanAspectError(rooms)
		rep.MeanLocationError = eval.MeanLocationError(rooms)
	}
	return rep, nil
}
