package main

import (
	"context"
	"sync/atomic"
	"testing"

	"crowdmap"
	"crowdmap/internal/cloud/integrity"
	"crowdmap/internal/cloud/mapserve"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
)

// corruptStoredDoc flips one bit of a stored document, simulating silent
// rot under the WAL (whose frame CRCs only cover the log, not documents
// rewritten later).
func corruptStoredDoc(t *testing.T, st *store.Store, coll, key string) {
	t.Helper()
	raw, ok := st.Get(coll, key)
	if !ok {
		t.Fatalf("no document %s/%s to corrupt", coll, key)
	}
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 0x08
	if err := st.Put(coll, key, mut); err != nil {
		t.Fatal(err)
	}
}

// checkpointingStub returns a reconstruct stub that completes the plan
// stage in the journal like the real pipeline does, so the processor's
// skip/repair logic sees realistic checkpoint state.
func checkpointingStub(runs *atomic.Int64) func(context.Context, []*crowdmap.Capture, crowdmap.Config) (*crowdmap.Result, error) {
	return func(_ context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error) {
		runs.Add(1)
		fp := crowdmap.CorpusFingerprint(captures)
		_ = cfg.Checkpoints.Complete(cfg.JobID, crowdmap.StagePlan, fp, nil)
		return stubResult(cfg.JobID), nil
	}
}

// TestScanRepairsCorruptPlan: once a corpus is reconstructed and
// checkpointed, further scans skip it — until the stored plan rots. The
// health marker then changes the scheduler fingerprint, the job is
// redriven as a repair run, and the plan document is rewritten intact.
func TestScanRepairsCorruptPlan(t *testing.T) {
	st := store.New()
	seedCaptures(t, st, "Lab2", 3, 40)
	proc := newTestProcessor(t, st, 1)
	var runs atomic.Int64
	proc.reconstruct = checkpointingStub(&runs)

	ctx := context.Background()
	if err := proc.runOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("first cycle ran %d jobs, want 1", runs.Load())
	}
	// Unchanged corpus, intact artifacts: the next cycle is a no-op (the
	// scheduler fingerprint is clean; even if redriven, the job skips).
	if err := proc.runOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("steady-state cycle re-ran reconstruction (%d runs)", runs.Load())
	}

	corruptStoredDoc(t, st, server.CollPlans, "Lab2")
	if err := proc.runOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("corruption did not redrive the job (%d runs)", runs.Load())
	}
	if !proc.planIntact("Lab2") {
		t.Fatal("plan not repaired")
	}
	c := proc.obs.Snapshot().Counters
	if c["processor.plan.repaired"] != 1 {
		t.Fatalf("processor.plan.repaired = %d, want 1", c["processor.plan.repaired"])
	}
	if c["integrity.repaired"] == 0 || c["integrity.quarantined"] == 0 {
		t.Fatalf("integrity counters not advanced: %v", c)
	}
	if _, ok := st.Get(integrity.QuarantineColl, server.CollPlans+"/Lab2"); !ok {
		t.Fatal("corrupt plan not quarantined")
	}
	// Repaired state is steady again.
	if err := proc.runOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("post-repair cycle re-ran reconstruction (%d runs)", runs.Load())
	}
}

// TestScrubDetectsAndRepairs: a scrub pass over a store with a rotten
// plan and a rotten read-tier record quarantines both, counts them on
// scrub.*, and redrives the owning building so every artifact verifies
// again afterward.
func TestScrubDetectsAndRepairs(t *testing.T) {
	st := store.New()
	seedCaptures(t, st, "Lab2", 3, 60)
	proc := newTestProcessor(t, st, 1)
	maps, err := mapserve.New(st, mapserve.WithObs(proc.obs))
	if err != nil {
		t.Fatal(err)
	}
	proc.maps = maps
	var runs atomic.Int64
	proc.reconstruct = checkpointingStub(&runs)

	ctx := context.Background()
	if err := proc.runOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if published, err := maps.Verify("Lab2"); !published || err != nil {
		t.Fatalf("read tier unhealthy after first cycle: (%v, %v)", published, err)
	}

	corruptStoredDoc(t, st, server.CollPlans, "Lab2")
	corruptStoredDoc(t, st, mapserve.CollServe, "Lab2/plan")
	if err := proc.scrub(ctx); err != nil {
		t.Fatal(err)
	}
	// scrub quarantined the rot and kicked a scan; wait for the repair job.
	if err := proc.sched.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	c := proc.obs.Snapshot().Counters
	if c["scrub.passes"] != 1 {
		t.Fatalf("scrub.passes = %d, want 1", c["scrub.passes"])
	}
	if c["scrub.corrupt"] < 2 {
		t.Fatalf("scrub.corrupt = %d, want >= 2", c["scrub.corrupt"])
	}
	if c["scrub.docs"] < 3 {
		t.Fatalf("scrub.docs = %d, want >= 3", c["scrub.docs"])
	}
	if runs.Load() != 2 {
		t.Fatalf("scrub did not redrive the building (%d runs)", runs.Load())
	}
	if !proc.planIntact("Lab2") {
		t.Fatal("plan not repaired after scrub")
	}
	if published, err := maps.Verify("Lab2"); !published || err != nil {
		t.Fatalf("read tier not repaired after scrub: (%v, %v)", published, err)
	}
	// A clean follow-up pass finds nothing.
	if err := proc.scrub(ctx); err != nil {
		t.Fatal(err)
	}
	c = proc.obs.Snapshot().Counters
	if c["scrub.passes"] != 2 {
		t.Fatalf("scrub.passes = %d, want 2", c["scrub.passes"])
	}
	if got := c["scrub.corrupt"]; got != 2 {
		t.Fatalf("clean pass found new corruption (scrub.corrupt = %d)", got)
	}
}

// TestPairCacheCorruptionStartsCold: a rotten pair-cache export is
// quarantined at load and the cache starts cold instead of poisoned —
// for both a broken envelope and a valid envelope over unparsable JSON.
func TestPairCacheCorruptionStartsCold(t *testing.T) {
	st := store.New()
	proc := newTestProcessor(t, st, 1)
	proc.savePairCache()
	corruptStoredDoc(t, st, collState, statePairCache)
	proc.loadPairCache()
	c := proc.obs.Snapshot().Counters
	if c["paircache.load.corrupt"] != 1 {
		t.Fatalf("paircache.load.corrupt = %d, want 1", c["paircache.load.corrupt"])
	}
	if _, ok := st.Get(collState, statePairCache); ok {
		t.Fatal("corrupt pair cache left in place")
	}

	// Valid envelope, garbage JSON: quarantined just the same.
	if err := proc.keep.Put(collState, statePairCache, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	proc.loadPairCache()
	if got := proc.obs.Snapshot().Counters["paircache.load.corrupt"]; got != 2 {
		t.Fatalf("paircache.load.corrupt = %d, want 2", got)
	}
	if _, ok := st.Get(collState, statePairCache); ok {
		t.Fatal("unparsable pair cache left in place")
	}
	// The cache still works and can re-checkpoint cleanly.
	proc.savePairCache()
	proc.loadPairCache()
}
