package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"crowdmap"
	"crowdmap/internal/cloud/integrity"
	"crowdmap/internal/cloud/mapserve"
	"crowdmap/internal/cloud/pipeline"
	"crowdmap/internal/cloud/sched"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
)

// Store collections owned by the processor (the server owns captures and
// plans; see server.CollCaptures / server.CollPlans).
const (
	// collDeadLetter holds capture archives quarantined as poison: they made
	// reconstruction fail repeatedly, so they are moved out of the working
	// set and the corpus is processed without them. An operator can inspect
	// and re-admit them by moving the document back.
	collDeadLetter = "deadletter"
	// collState holds small processor state documents (the pair cache dump).
	collState = "state"
	// statePairCache is the collState key of the exported pair cache.
	statePairCache = "paircache"
	// statePlanFp prefixes the collState key of a building's plan commit
	// marker: the corpus fingerprint the stored plan and published read-tier
	// version were built from, written only after both landed.
	statePlanFp = "planfp/"
)

// maxCaptureFailures is how many failed reconstruction attempts a single
// capture may cause before it is quarantined to the dead-letter
// collection. Failures caused by cancellation (shutdown, per-attempt
// deadlines) never count: only deterministic pipeline failures do.
const maxCaptureFailures = 3

// processor turns stored captures into floor plans. Each scan groups the
// capture corpus by building and computes a per-building corpus
// fingerprint; buildings whose fingerprint changed since their last
// successful reconstruction are enqueued on the per-building scheduler,
// which runs them concurrently on a bounded worker pool (never two jobs
// for the same building at once). This replaces the old
// count-of-captures cycle check, which skipped reconstruction whenever a
// dead-lettered capture and a new upload left the count unchanged.
type processor struct {
	st         *store.Store
	hypotheses int
	workers    int
	obs        *crowdmap.MetricsRegistry
	logMetrics bool
	// quality configures the reconstruction-side input gate; nil disables
	// it (the daemon default is the lenient policy, set by newProcessor).
	quality *crowdmap.QualityParams
	// mode selects the reconstruction modalities (-mode): vision,
	// trajectory, or hybrid per-modality routing.
	mode crowdmap.Mode
	// stageBudget is the soft per-stage wall-clock budget (0 = off).
	stageBudget time.Duration
	// journal checkpoints per-stage completion; a building whose plan stage
	// already completed over the same corpus is skipped entirely.
	journal *crowdmap.CheckpointJournal
	// cache persists pair-comparison decisions across reconstruction
	// cycles: when new uploads arrive, only pairs involving new content are
	// compared (the paper's incremental-aggregation scaling, minus the
	// Spark cluster). It is exported to the store after each job, so a
	// restarted daemon starts warm. Safe for concurrent building jobs.
	cache *crowdmap.PairCache
	// sched serializes and parallelizes building jobs; created by start.
	sched *sched.Scheduler
	// reconstruct is the pipeline entry point; a field so tests can
	// substitute a stub.
	reconstruct func(ctx context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error)
	// delta switches reconstruction to the incremental entry point: each
	// building keeps a DeltaState across cycles, so a new upload costs
	// only its own extraction and pair comparisons instead of a full
	// rebuild. rebuildEvery forces a periodic full rebuild as a
	// correctness backstop (0 = never).
	delta        bool
	rebuildEvery int
	// reconstructDelta is the incremental entry point; a field so tests
	// can substitute a stub.
	reconstructDelta func(ctx context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config, state *crowdmap.DeltaState) (*crowdmap.Result, error)
	// maps, when non-nil, receives each completed reconstruction through
	// Publish: the read tier's versioned plan + localization index swap.
	// Publish failures are logged and counted, never failed — the SVG plan
	// is already stored, and the read tier keeps serving the previous
	// complete version.
	maps *mapserve.Service
	// keep integrity-envelopes the processor's own persisted documents
	// (SVG plans, the pair-cache export) and verifies everything it reads
	// back; created by start, after obs is wired.
	keep *integrity.Keeper
	// scrubPace throttles the background scrubber between documents so a
	// scrub pass never monopolizes the store lock (0 = no pause).
	scrubPace time.Duration

	mu sync.Mutex
	// deltaStates holds each building's memoized stage artifacts when
	// delta mode is on. Guarded by mu; the per-building scheduler never
	// runs two jobs for one building concurrently, so each state sees
	// serial runs.
	deltaStates map[string]*crowdmap.DeltaState
	// failures counts, per capture, how many reconstruction attempts it has
	// made fail; at maxCaptureFailures the capture is dead-lettered. A
	// successful cycle that includes a capture resets its count.
	failures map[string]int
	// meta caches per-capture scan metadata (building, raw-content hash) so
	// the periodic scan decodes each archive once, not every tick.
	meta map[string]captureMeta
}

// captureMeta is what the scan needs to know about a stored capture
// without re-decoding it: which building it belongs to, keyed by the
// hash of its raw archive bytes.
type captureMeta struct {
	hash     string
	building string
}

func newProcessor(st *store.Store, hypotheses, workers int) *processor {
	qp := crowdmap.DefaultQualityParams()
	return &processor{
		st:          st,
		hypotheses:  hypotheses,
		workers:     workers,
		quality:     &qp,
		cache:       crowdmap.NewPairCache(0),
		failures:    make(map[string]int),
		meta:        make(map[string]captureMeta),
		deltaStates: make(map[string]*crowdmap.DeltaState),

		reconstruct:      crowdmap.ReconstructContext,
		reconstructDelta: crowdmap.ReconstructDelta,
	}
}

// start brings up the per-building scheduler with the given worker
// count. Call after obs/journal are set and before the first scan.
func (p *processor) start(buildingWorkers int) error {
	s, err := sched.New(buildingWorkers, p.runBuilding,
		sched.WithObs(p.obs),
		sched.WithResultFunc(func(building string, err error) {
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("job %s: %v", building, err)
			}
		}))
	if err != nil {
		return err
	}
	p.sched = s
	p.keep = integrity.NewKeeper(p.st, p.obs)
	return nil
}

// loadPairCache warms the cache from the previous process's exported
// dump. Call after start (the integrity keeper must exist). A corrupt
// dump — bad envelope or JSON the cache rejects — is quarantined and the
// cache starts cold: every pair decision is recomputable.
func (p *processor) loadPairCache() {
	data, ok, err := p.keep.Get(collState, statePairCache)
	if err != nil {
		p.obs.Counter("paircache.load.corrupt").Inc()
		log.Printf("pair cache load: %v (starting cold)", err)
		return
	}
	if !ok {
		return
	}
	if err := p.cache.ImportJSON(data); err != nil {
		p.keep.Quarantine(collState, statePairCache)
		p.obs.Counter("paircache.load.corrupt").Inc()
		log.Printf("pair cache load: %v (starting cold)", err)
		return
	}
	log.Printf("pair cache: %d decisions loaded", p.cache.Len())
}

// savePairCache checkpoints the cache through the store (and hence the
// WAL, when one backs it), under an integrity envelope.
func (p *processor) savePairCache() {
	data, err := p.cache.ExportJSON()
	if err != nil {
		log.Printf("pair cache export: %v", err)
		return
	}
	if err := p.keep.Put(collState, statePairCache, data); err != nil {
		log.Printf("pair cache save: %v", err)
	}
}

// quarantine moves a poison capture to the dead-letter collection so the
// rest of the corpus can proceed without it. Caller holds p.mu.
func (p *processor) quarantineLocked(id, cause string) {
	if data, ok := p.st.Get(server.CollCaptures, id); ok {
		if err := p.st.Put(collDeadLetter, id, data); err != nil {
			log.Printf("dead-letter %s: %v", id, err)
			return
		}
		if err := p.st.Delete(server.CollCaptures, id); err != nil {
			log.Printf("dead-letter %s: %v", id, err)
			return
		}
	}
	delete(p.failures, id)
	delete(p.meta, id)
	p.obs.Counter("captures.deadlettered").Inc()
	log.Printf("capture %s dead-lettered: %s", id, cause)
}

// noteFailure charges one reconstruction failure to a capture and
// quarantines it at the threshold. Returns true when the capture was
// quarantined.
func (p *processor) noteFailure(id string, cause error) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures[id]++
	if p.failures[id] >= maxCaptureFailures {
		p.quarantineLocked(id, fmt.Sprintf("%d failures: %v", maxCaptureFailures, cause))
		return true
	}
	return false
}

// isTransient reports whether a reconstruction error came from
// cancellation rather than the data: a SIGTERM mid-extract or a
// per-attempt retry deadline wraps context.Canceled/DeadlineExceeded
// (possibly inside a CaptureError), and charging those to a capture
// would dead-letter healthy data after three shutdowns.
func isTransient(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// scan is the periodic job: it walks the capture collection, groups
// captures by building, computes each building's corpus fingerprint from
// the raw archive hashes, and marks dirty buildings on the scheduler.
// Decode work is memoized per raw-content hash, so a steady-state scan
// hashes bytes but decodes nothing.
func (p *processor) scan(ctx context.Context) error {
	keys := p.st.Keys(server.CollCaptures)
	live := make(map[string]bool, len(keys))
	byBuilding := make(map[string][]string)
	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return err
		}
		data, ok := p.st.Get(server.CollCaptures, k)
		if !ok {
			continue
		}
		sum := sha256.Sum256(data)
		hash := hex.EncodeToString(sum[:])
		p.mu.Lock()
		m, known := p.meta[k]
		p.mu.Unlock()
		if !known || m.hash != hash {
			c, err := server.DecodeCapture(data)
			if err != nil {
				// An archive that passed upload validation but no longer
				// decodes is poison too; count it toward quarantine instead
				// of skipping it silently forever.
				if !p.noteFailure(k, err) {
					log.Printf("decode %s: %v (skipping)", k, err)
				}
				continue
			}
			m = captureMeta{hash: hash, building: c.Geo.Building}
			p.mu.Lock()
			p.meta[k] = m
			p.mu.Unlock()
		}
		live[k] = true
		byBuilding[m.building] = append(byBuilding[m.building], k+":"+hash)
	}
	// Forget metadata of deleted captures so the map tracks the store.
	p.mu.Lock()
	for k := range p.meta {
		if !live[k] {
			delete(p.meta, k)
		}
	}
	p.mu.Unlock()
	for building, entries := range byBuilding {
		// Fold the persisted artifacts' health into the fingerprint: losing
		// or corrupting the plan or a read-tier document changes the marker,
		// so the scheduler redrives the building and the job recomputes the
		// lost artifact — self-healing with zero scheduler changes.
		entries = append(entries, "health:"+p.healthMarker(building))
		p.sched.Mark(building, corpusFingerprint(entries))
	}
	p.obs.Gauge("sched.buildings.tracked").Set(float64(len(byBuilding)))
	if p.logMetrics && p.obs != nil {
		if data, err := json.Marshal(p.obs.Snapshot()); err == nil {
			log.Printf("metrics: %s", data)
		}
	}
	return nil
}

// corpusFingerprint hashes a building's sorted "captureID:rawHash"
// entries into the dirty-tracking fingerprint. It deliberately uses raw
// archive bytes (not decoded content) so the scan stays cheap; the
// checkpoint journal inside the job uses crowdmap.CorpusFingerprint over
// decoded captures, which serves the same invalidation role at the
// stage level.
func corpusFingerprint(entries []string) string {
	sort.Strings(entries)
	h := sha256.New()
	for _, e := range entries {
		h.Write([]byte(e))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// planIntact reports whether the building's SVG plan document is present
// under a valid integrity envelope. A corrupt document is quarantined by
// the check (the read path would have done the same) and reported as
// missing, so the caller re-renders.
func (p *processor) planIntact(building string) bool {
	_, ok, err := p.keep.Get(server.CollPlans, building)
	return err == nil && ok
}

// planState reports whether the plan document AND its commit marker
// verify, and returns the corpus fingerprint the plan was committed
// under. The pipeline journals the plan stage before the processor
// stores the SVG, so "journal done" alone cannot distinguish a committed
// plan from a crash that left the previous corpus's (intact, stale)
// plan behind — the marker, written last, can.
func (p *processor) planState(building string) (intact bool, fp string) {
	if !p.planIntact(building) {
		return false, ""
	}
	data, ok, err := p.keep.Get(collState, statePlanFp+building)
	if err != nil || !ok {
		return false, ""
	}
	return true, string(data)
}

// serveHealthy reports whether the read tier's persisted artifacts for
// the building verify (or the read tier is off). "Never published" counts
// as unhealthy so a reconstruction run publishes it.
func (p *processor) serveHealthy(building string) bool {
	if p.maps == nil {
		return true
	}
	published, err := p.maps.Verify(building)
	return published && err == nil
}

// healthMarker summarizes the building's persisted-artifact health for
// the scan fingerprint.
func (p *processor) healthMarker(building string) string {
	serve := "off"
	if p.maps != nil {
		switch published, err := p.maps.Verify(building); {
		case err != nil:
			serve = "bad"
		case !published:
			serve = "unpublished"
		default:
			serve = "ok"
		}
	}
	// The marker carries the committed corpus fingerprint (not just a
	// bool): a stale-but-intact plan left by a crash between the journal
	// write and the plan commit changes the marker and redrives the job.
	plan := "bad"
	if intact, fp := p.planState(building); intact {
		plan = fp
	}
	return fmt.Sprintf("plan:%s;serve:%s", plan, serve)
}

// scrub is one background integrity pass: it walks every persisted
// derived artifact — checkpoints, processor state, SVG plans, and the
// read tier's records and indexes — verifying envelopes and codecs. A
// corrupt document is quarantined by the verification itself; scrub then
// runs a scan so the changed health markers redrive the owning buildings
// and the artifacts are recomputed. Paced by scrubPace so a pass never
// monopolizes the store.
func (p *processor) scrub(ctx context.Context) error {
	start := time.Now()
	docs, corrupt := 0, 0
	for _, coll := range []string{pipeline.CheckpointColl, collState, server.CollPlans} {
		for _, key := range p.st.Keys(coll) {
			if err := ctx.Err(); err != nil {
				return err
			}
			docs++
			if _, _, err := p.keep.Get(coll, key); err != nil {
				corrupt++
				log.Printf("scrub: %s/%s corrupt: %v", coll, key, err)
			}
			p.pace()
		}
	}
	if p.maps != nil {
		for _, b := range p.maps.Buildings() {
			if err := ctx.Err(); err != nil {
				return err
			}
			docs++
			if published, err := p.maps.Verify(b); published && err != nil {
				corrupt++
				log.Printf("scrub: read tier %s corrupt: %v", b, err)
			}
			p.pace()
		}
	}
	p.obs.Counter("scrub.passes").Inc()
	p.obs.Counter("scrub.docs").Add(int64(docs))
	p.obs.Counter("scrub.corrupt").Add(int64(corrupt))
	p.obs.Histogram("scrub.seconds").Observe(time.Since(start).Seconds())
	if corrupt > 0 {
		log.Printf("scrub: %d/%d documents corrupt and quarantined, scheduling repair", corrupt, docs)
		// Redrive immediately instead of waiting for the next scan tick.
		return p.scan(ctx)
	}
	return nil
}

// pace sleeps the scrub throttle, if one is configured.
func (p *processor) pace() {
	if p.scrubPace > 0 {
		time.Sleep(p.scrubPace)
	}
}

// runOnce is the synchronous test/tooling entry point: one scan, then
// wait for every enqueued building job to finish.
func (p *processor) runOnce(ctx context.Context) error {
	if err := p.scan(ctx); err != nil {
		return err
	}
	return p.sched.Wait(ctx)
}

// buildingCaptures decodes the current corpus of one building from the
// store. Captures whose cached metadata names another building are
// skipped without decoding. The second return value maps each capture's
// declared ID (from meta.json) to the store key it was uploaded under:
// the pipeline reports failures and exclusions by declared ID, but
// quarantine must move the store document, and nothing forces a client
// to upload an archive under the ID its metadata declares. A later
// document duplicating an earlier one's declared ID is skipped — two
// corpus members with one identity would make failure attribution
// ambiguous (and would let a hostile upload get a victim's capture
// quarantined in its place).
func (p *processor) buildingCaptures(ctx context.Context, building string) ([]*crowdmap.Capture, map[string]string, error) {
	var out []*crowdmap.Capture
	keyByID := make(map[string]string)
	for _, k := range p.st.Keys(server.CollCaptures) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		p.mu.Lock()
		m, known := p.meta[k]
		p.mu.Unlock()
		if known && m.building != building {
			continue
		}
		data, ok := p.st.Get(server.CollCaptures, k)
		if !ok {
			continue
		}
		c, err := server.DecodeCapture(data)
		if err != nil {
			// The scan owns decode-poison accounting; here we just exclude it
			// from the job.
			continue
		}
		if c.Geo.Building == building {
			if prev, dup := keyByID[c.ID]; dup {
				log.Printf("%s: capture %s declares the same ID %q as %s, skipping it",
					building, k, c.ID, prev)
				continue
			}
			keyByID[c.ID] = k
			out = append(out, c)
		}
	}
	return out, keyByID, nil
}

// runBuilding is the scheduler's job body: reconstruct one building's
// corpus, quarantining poison captures and degrading to the remaining
// corpus rather than failing the job.
func (p *processor) runBuilding(ctx context.Context, building string) error {
	captures, keyByID, err := p.buildingCaptures(ctx, building)
	if err != nil {
		return err
	}
	return p.reconstructBuilding(ctx, building, captures, keyByID)
}

// storeKey translates a capture's declared ID into the store key its
// document lives under, falling back to the ID itself when the mapping
// has no entry (the usual case where clients upload under the declared
// ID, and the test path that seeds captures directly).
func storeKey(keyByID map[string]string, id string) string {
	if k, ok := keyByID[id]; ok {
		return k
	}
	return id
}

// deltaState returns (creating on first use) the building's persistent
// delta-reconstruction state.
func (p *processor) deltaState(building string) *crowdmap.DeltaState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.deltaStates[building]
	if st == nil {
		st = crowdmap.NewDeltaState()
		p.deltaStates[building] = st
	}
	return st
}

// reconstructBuilding runs one building's corpus through the pipeline.
// On a poison-capture failure it quarantines the capture and immediately
// retries with the rest; on cancellation it returns without charging any
// capture; on success it resets the failure count of every capture the
// cycle included and checkpoints the pair cache.
func (p *processor) reconstructBuilding(ctx context.Context, building string, captures []*crowdmap.Capture, keyByID map[string]string) error {
	for {
		if len(captures) < 3 {
			log.Printf("%s: only %d captures, waiting for more", building, len(captures))
			return nil
		}
		fp := crowdmap.CorpusFingerprint(captures)
		planIntact, planFp := p.planState(building)
		planOK := planIntact && planFp == fp
		serveOK := p.serveHealthy(building)
		journalDone := p.journal.Completed(building, crowdmap.StagePlan, fp)
		if planOK && serveOK && journalDone {
			// The plan stage already completed over exactly this corpus (a
			// restart, or a fresh scheduler over an old store) and every
			// persisted artifact verifies: nothing to do.
			log.Printf("%s: plan already reconstructed for this corpus, skipping", building)
			return nil
		}
		// A completed journal with a missing/corrupt plan or read-tier
		// artifact means this run is a repair, not new work.
		repairRun := journalDone && (!planOK || !serveOK)
		cfg := crowdmap.DefaultConfig()
		cfg.Layout.Hypotheses = p.hypotheses
		cfg.Workers = p.workers
		cfg.Metrics = p.obs
		cfg.PairCache = p.cache
		cfg.JobID = building
		cfg.Checkpoints = p.journal
		cfg.Quality = p.quality
		cfg.Mode = p.mode
		cfg.StageBudget = p.stageBudget
		start := time.Now()
		var res *crowdmap.Result
		var err error
		if p.delta {
			// The shared daemon pair cache is passed as cfg.PairCache above,
			// so a delta-state reset (config change or rebuild backstop)
			// never flushes it — it has its own signature-based invalidation.
			cfg.DeltaRebuildEvery = p.rebuildEvery
			res, err = p.reconstructDelta(ctx, captures, cfg, p.deltaState(building))
		} else {
			res, err = p.reconstruct(ctx, captures, cfg)
		}
		if err != nil {
			if isTransient(err) {
				// Shutdown or a per-attempt deadline, not the data's fault:
				// no capture gains a failure count, the journal already holds
				// whatever stages completed, and the next scan redrives the
				// job (or a restarted daemon resumes it).
				log.Printf("%s: reconstruction interrupted: %v", building, err)
				return fmt.Errorf("%s: %w", building, err)
			}
			var ce *crowdmap.CaptureError
			if errors.As(err, &ce) {
				if p.noteFailure(storeKey(keyByID, ce.CaptureID), err) {
					// Graceful degradation: drop the poison capture and
					// immediately retry this building with the rest. Build a
					// fresh slice — filtering in place would alias the array
					// a caller may still hold.
					kept := make([]*crowdmap.Capture, 0, len(captures)-1)
					for _, c := range captures {
						if c.ID != ce.CaptureID {
							kept = append(kept, c)
						}
					}
					captures = kept
					continue
				}
			}
			log.Printf("%s: reconstruction failed: %v", building, err)
			return fmt.Errorf("%s: %w", building, err)
		}
		svg, err := res.Plan.RenderSVG()
		if err != nil {
			log.Printf("%s: render: %v", building, err)
			return fmt.Errorf("%s: render: %w", building, err)
		}
		if err := p.keep.Put(server.CollPlans, building, svg); err != nil {
			log.Printf("%s: store plan: %v", building, err)
			return fmt.Errorf("%s: store plan: %w", building, err)
		}
		if repairRun {
			if !planOK {
				p.obs.Counter("integrity.repaired").Inc()
			}
			p.obs.Counter("processor.plan.repaired").Inc()
			log.Printf("%s: repaired persisted artifacts (plan intact=%t, serve intact=%t)",
				building, planOK, serveOK)
		}
		// Publish to the read tier after the SVG store succeeds: versioned
		// vector/PNG artifacts plus the localization index, swapped
		// atomically so concurrent plan/locate readers never see a partial
		// version. An unchanged plan keeps its version (and clients' 304s).
		published := true
		if p.maps != nil {
			if v, err := p.maps.Publish(building, res); err != nil {
				published = false
				p.obs.Counter("mapserve.publish.errors").Inc()
				log.Printf("%s: mapserve publish: %v", building, err)
			} else {
				log.Printf("%s: serving plan version %d (etag %.12s)", building, v.Version, v.ETag)
			}
		}
		// The commit marker goes last: it asserts plan AND read tier were
		// built from this corpus, so a crash anywhere above leaves a stale
		// marker and the next scan redrives the build.
		if published {
			if err := p.keep.Put(collState, statePlanFp+building, []byte(fp)); err != nil {
				log.Printf("%s: store plan marker: %v", building, err)
			}
		}
		// Degraded-mode aftermath: captures the pipeline excluded (gate
		// rejection, recovered panic) are proven poison — dead-letter them
		// now, without waiting for three strikes, so the next scan's corpus
		// fingerprint matches what was actually reconstructed and the job
		// is not redriven over the same exclusions forever.
		excluded := make(map[string]bool, len(res.Excluded))
		if len(res.Excluded) > 0 {
			p.mu.Lock()
			for _, ex := range res.Excluded {
				excluded[ex.CaptureID] = true
				p.quarantineLocked(storeKey(keyByID, ex.CaptureID),
					fmt.Sprintf("excluded at %s stage: %s",
						ex.Stage, strings.Join(ex.Reasons, ", ")))
			}
			p.mu.Unlock()
			log.Printf("%s: degraded reconstruction: %d/%d captures used, %d excluded",
				building, res.Coverage.Used, res.Coverage.Input, res.Coverage.Excluded)
		}
		// A capture that took part in a successful cycle is evidently not
		// poison: reset its failure count so unrelated future failures start
		// from zero.
		p.mu.Lock()
		for _, c := range captures {
			if !excluded[c.ID] {
				delete(p.failures, storeKey(keyByID, c.ID))
			}
		}
		p.mu.Unlock()
		p.savePairCache()
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "%s: plan updated (%d rooms, %d/%d tracks placed, %s)",
			building, len(res.Plan.Rooms), len(res.Aggregation.Offsets), len(res.Tracks),
			time.Since(start).Round(time.Millisecond))
		log.Print(buf.String())
		return nil
	}
}
