package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"crowdmap"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"

	"context"
)

// Store collections owned by the processor (the server owns captures and
// plans; see server.CollCaptures / server.CollPlans).
const (
	// collDeadLetter holds capture archives quarantined as poison: they made
	// reconstruction fail repeatedly, so they are moved out of the working
	// set and the corpus is processed without them. An operator can inspect
	// and re-admit them by moving the document back.
	collDeadLetter = "deadletter"
	// collState holds small processor state documents (the pair cache dump).
	collState = "state"
	// statePairCache is the collState key of the exported pair cache.
	statePairCache = "paircache"
)

// maxCaptureFailures is how many failed reconstruction attempts a single
// capture may cause before it is quarantined to the dead-letter
// collection.
const maxCaptureFailures = 3

// processor runs the reconstruction pipeline over stored captures, grouped
// by the Task-1 geo tag (building), skipping reruns when nothing changed.
type processor struct {
	st         *store.Store
	hypotheses int
	workers    int
	lastCount  int
	obs        *crowdmap.MetricsRegistry
	logMetrics bool
	// journal checkpoints per-stage completion; a building whose plan stage
	// already completed over the same corpus is skipped entirely.
	journal *crowdmap.CheckpointJournal
	// cache persists pair-comparison decisions across reconstruction
	// cycles: when new uploads arrive, only pairs involving new content are
	// compared (the paper's incremental-aggregation scaling, minus the
	// Spark cluster). It is exported to the store after each cycle, so a
	// restarted daemon starts warm.
	cache *crowdmap.PairCache
	// failures counts, per capture, how many reconstruction attempts it has
	// made fail; at maxCaptureFailures the capture is dead-lettered.
	failures map[string]int
	// reconstruct is the pipeline entry point; a field so tests can
	// substitute a stub.
	reconstruct func(ctx context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error)
}

func newProcessor(st *store.Store, hypotheses, workers int) *processor {
	return &processor{
		st:          st,
		hypotheses:  hypotheses,
		workers:     workers,
		cache:       crowdmap.NewPairCache(0),
		failures:    make(map[string]int),
		reconstruct: crowdmap.ReconstructContext,
	}
}

// loadPairCache warms the cache from the previous process's exported dump.
func (p *processor) loadPairCache() {
	data, ok := p.st.Get(collState, statePairCache)
	if !ok {
		return
	}
	if err := p.cache.ImportJSON(data); err != nil {
		log.Printf("pair cache load: %v (starting cold)", err)
		return
	}
	log.Printf("pair cache: %d decisions loaded", p.cache.Len())
}

// savePairCache checkpoints the cache through the store (and hence the
// WAL, when one backs it).
func (p *processor) savePairCache() {
	data, err := p.cache.ExportJSON()
	if err != nil {
		log.Printf("pair cache export: %v", err)
		return
	}
	if err := p.st.Put(collState, statePairCache, data); err != nil {
		log.Printf("pair cache save: %v", err)
	}
}

// quarantine moves a poison capture to the dead-letter collection so the
// rest of the corpus can proceed without it.
func (p *processor) quarantine(id string, cause error) {
	if data, ok := p.st.Get(server.CollCaptures, id); ok {
		if err := p.st.Put(collDeadLetter, id, data); err != nil {
			log.Printf("dead-letter %s: %v", id, err)
			return
		}
		if err := p.st.Delete(server.CollCaptures, id); err != nil {
			log.Printf("dead-letter %s: %v", id, err)
			return
		}
	}
	delete(p.failures, id)
	p.obs.Counter("captures.deadlettered").Inc()
	log.Printf("capture %s dead-lettered after %d failures: %v", id, maxCaptureFailures, cause)
}

func (p *processor) run(ctx context.Context) error {
	keys := p.st.Keys(server.CollCaptures)
	if len(keys) == 0 || len(keys) == p.lastCount {
		return nil
	}
	log.Printf("reconstructing from %d captures", len(keys))
	byBuilding := make(map[string][]*crowdmap.Capture)
	for _, k := range keys {
		data, ok := p.st.Get(server.CollCaptures, k)
		if !ok {
			continue
		}
		c, err := server.DecodeCapture(data)
		if err != nil {
			// An archive that passed upload validation but no longer decodes
			// is poison too; count it toward quarantine instead of skipping
			// it silently forever.
			p.failures[k]++
			if p.failures[k] >= maxCaptureFailures {
				p.quarantine(k, err)
			} else {
				log.Printf("decode %s: %v (skipping)", k, err)
			}
			continue
		}
		byBuilding[c.Geo.Building] = append(byBuilding[c.Geo.Building], c)
	}
	buildings := make([]string, 0, len(byBuilding))
	for b := range byBuilding {
		buildings = append(buildings, b)
	}
	sort.Strings(buildings)
	var firstErr error
	for _, building := range buildings {
		if err := p.reconstructBuilding(ctx, building, byBuilding[building]); err != nil && firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	p.savePairCache()
	if firstErr != nil {
		// Leave lastCount untouched: the retry policy redrives this cycle
		// and it must not be short-circuited by the nothing-changed check.
		return firstErr
	}
	p.lastCount = len(keys)
	if p.logMetrics && p.obs != nil {
		if data, err := json.Marshal(p.obs.Snapshot()); err == nil {
			log.Printf("metrics: %s", data)
		}
	}
	return nil
}

// reconstructBuilding runs one building's corpus through the pipeline,
// quarantining poison captures and degrading to the remaining corpus
// rather than failing the whole cycle.
func (p *processor) reconstructBuilding(ctx context.Context, building string, captures []*crowdmap.Capture) error {
	for {
		if len(captures) < 3 {
			log.Printf("%s: only %d captures, waiting for more", building, len(captures))
			return nil
		}
		fp := crowdmap.CorpusFingerprint(captures)
		if _, havePlan := p.st.Get(server.CollPlans, building); havePlan &&
			p.journal.Completed(building, crowdmap.StagePlan, fp) {
			// The plan stage already completed over exactly this corpus (a
			// restart, or a retry after another building failed): nothing to do.
			log.Printf("%s: plan already reconstructed for this corpus, skipping", building)
			return nil
		}
		cfg := crowdmap.DefaultConfig()
		cfg.Layout.Hypotheses = p.hypotheses
		cfg.Workers = p.workers
		cfg.Metrics = p.obs
		cfg.PairCache = p.cache
		cfg.JobID = building
		cfg.Checkpoints = p.journal
		start := time.Now()
		res, err := p.reconstruct(ctx, captures, cfg)
		if err != nil {
			var ce *crowdmap.CaptureError
			if errors.As(err, &ce) {
				p.failures[ce.CaptureID]++
				if p.failures[ce.CaptureID] >= maxCaptureFailures {
					// Graceful degradation: drop the poison capture and
					// immediately retry this building with the rest.
					p.quarantine(ce.CaptureID, err)
					kept := captures[:0]
					for _, c := range captures {
						if c.ID != ce.CaptureID {
							kept = append(kept, c)
						}
					}
					captures = kept
					continue
				}
			}
			log.Printf("%s: reconstruction failed: %v", building, err)
			return fmt.Errorf("%s: %w", building, err)
		}
		svg, err := res.Plan.RenderSVG()
		if err != nil {
			log.Printf("%s: render: %v", building, err)
			return fmt.Errorf("%s: render: %w", building, err)
		}
		if err := p.st.Put(server.CollPlans, building, svg); err != nil {
			log.Printf("%s: store plan: %v", building, err)
			return fmt.Errorf("%s: store plan: %w", building, err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "%s: plan updated (%d rooms, %d/%d tracks placed, %s)",
			building, len(res.Plan.Rooms), len(res.Aggregation.Offsets), len(res.Tracks),
			time.Since(start).Round(time.Millisecond))
		log.Print(buf.String())
		return nil
	}
}
