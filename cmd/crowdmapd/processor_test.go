package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"crowdmap"
	"crowdmap/internal/aggregate"
	"crowdmap/internal/cloud/pipeline"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
	"crowdmap/internal/crowd"
	"crowdmap/internal/floorplan"
	"crowdmap/internal/geom"
	"crowdmap/internal/gridmap"
	"crowdmap/internal/mathx"
	"crowdmap/internal/world"
)

// seedCaptures stores n encoded captures for one building, returning
// their IDs in insertion order.
func seedCaptures(t *testing.T, st *store.Store, n int) []string {
	t.Helper()
	users, err := crowd.NewPopulation(1, 0, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := crowd.NewGenerator(world.Lab2())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("cap-%d", i)
		c, err := gen.SWS(id, users[0], geom.P(3, 7.5), geom.P(14, 7.5), mathx.NewRNG(int64(2+i)))
		if err != nil {
			t.Fatal(err)
		}
		data, err := server.EncodeCapture(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(server.CollCaptures, id, data); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

// stubResult is a minimal renderable reconstruction result.
func stubResult() *crowdmap.Result {
	mask := &gridmap.Binary{
		Bounds: geom.Rect{Min: geom.P(0, 0), Max: geom.P(10, 10)},
		Res:    1, W: 10, H: 10, Cells: make([]bool, 100),
	}
	return &crowdmap.Result{
		Plan:        &floorplan.Plan{Building: "Lab2", HallwayMask: mask},
		Aggregation: &aggregate.Result{},
	}
}

// TestProcessorQuarantinesPoisonCapture is the graceful-degradation
// acceptance test: a capture that makes reconstruction fail repeatedly is
// moved to the dead-letter collection, and the cycle then completes with
// the remaining corpus.
func TestProcessorQuarantinesPoisonCapture(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, 4)
	poison := ids[1]

	proc := newProcessor(st, 100, 1)
	proc.obs = crowdmap.NewMetricsRegistry()
	journal, err := pipeline.NewJournal(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc.journal = journal
	calls := 0
	proc.reconstruct = func(_ context.Context, captures []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		calls++
		for _, c := range captures {
			if c.ID == poison {
				return nil, fmt.Errorf("stage 1: %w",
					&crowdmap.CaptureError{CaptureID: poison, Err: errors.New("corrupt frames")})
			}
		}
		return stubResult(), nil
	}

	ctx := context.Background()
	// Attempts 1 and 2: the poison capture fails the cycle (the retry
	// policy would redrive these in production).
	for attempt := 1; attempt <= maxCaptureFailures-1; attempt++ {
		if err := proc.run(ctx); err == nil {
			t.Fatalf("attempt %d: cycle succeeded with poison capture present", attempt)
		}
	}
	if _, ok := st.Get(collDeadLetter, poison); ok {
		t.Fatal("capture quarantined before reaching the failure threshold")
	}
	// Attempt 3 hits the threshold: quarantine, then completion with the
	// remaining three captures inside the same cycle.
	if err := proc.run(ctx); err != nil {
		t.Fatalf("cycle after quarantine: %v", err)
	}
	if _, ok := st.Get(collDeadLetter, poison); !ok {
		t.Error("poison capture not in dead-letter collection")
	}
	if _, ok := st.Get(server.CollCaptures, poison); ok {
		t.Error("poison capture still in the working set")
	}
	if _, ok := st.Get(server.CollPlans, "Lab2"); !ok {
		t.Error("plan not produced from the remaining corpus")
	}
	if v := proc.obs.Snapshot().Counters["captures.deadlettered"]; v != 1 {
		t.Errorf("captures.deadlettered = %d, want 1", v)
	}
	// The pair cache was persisted at end of cycle.
	if _, ok := st.Get(collState, statePairCache); !ok {
		t.Error("pair cache not checkpointed")
	}
}

// TestProcessorSkipsCompletedJob: a building whose plan stage is already
// checkpointed for the current corpus is not reconstructed again.
func TestProcessorSkipsCompletedJob(t *testing.T) {
	st := store.New()
	seedCaptures(t, st, 3)
	proc := newProcessor(st, 100, 1)
	proc.obs = crowdmap.NewMetricsRegistry()
	journal, err := pipeline.NewJournal(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc.journal = journal
	calls := 0
	proc.reconstruct = func(_ context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error) {
		calls++
		// Mimic the real pipeline's final checkpoint.
		if err := cfg.Checkpoints.Complete(cfg.JobID, crowdmap.StagePlan,
			crowdmap.CorpusFingerprint(captures), nil); err != nil {
			t.Fatal(err)
		}
		return stubResult(), nil
	}
	if err := proc.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("first cycle: %d reconstructions, want 1", calls)
	}
	// Force a re-examination (pretend the count changed) — the checkpoint,
	// not lastCount, must prevent the rerun.
	proc.lastCount = 0
	if err := proc.run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("completed job was reconstructed again (%d calls)", calls)
	}
}
