package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowdmap"
	"crowdmap/internal/aggregate"
	"crowdmap/internal/cloud/mapserve"
	"crowdmap/internal/cloud/pipeline"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
	"crowdmap/internal/crowd"
	"crowdmap/internal/floorplan"
	"crowdmap/internal/geom"
	"crowdmap/internal/gridmap"
	"crowdmap/internal/mathx"
	"crowdmap/internal/world"
)

// seedCaptures stores n encoded captures for one building, returning
// their IDs in insertion order. The geo tag is overridden to building so
// one generated world can seed corpora for several logical buildings.
func seedCaptures(t *testing.T, st *store.Store, building string, n int, seedBase int64) []string {
	t.Helper()
	users, err := crowd.NewPopulation(1, 0, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := crowd.NewGenerator(world.Lab2())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-cap-%d", building, seedBase+int64(i))
		c, err := gen.SWS(id, users[0], geom.P(3, 7.5), geom.P(14, 7.5), mathx.NewRNG(seedBase+int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		c.Geo.Building = building
		data, err := server.EncodeCapture(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(server.CollCaptures, id, data); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

// stubResult is a minimal renderable reconstruction result.
func stubResult(building string) *crowdmap.Result {
	mask := &gridmap.Binary{
		Bounds: geom.Rect{Min: geom.P(0, 0), Max: geom.P(10, 10)},
		Res:    1, W: 10, H: 10, Cells: make([]bool, 100),
	}
	return &crowdmap.Result{
		Plan:        &floorplan.Plan{Building: building, HallwayMask: mask},
		Aggregation: &aggregate.Result{},
	}
}

// newTestProcessor builds a started processor with a journal over st and
// the given number of building workers; Close is registered on t.
func newTestProcessor(t *testing.T, st *store.Store, buildingWorkers int) *processor {
	t.Helper()
	proc := newProcessor(st, 100, 1)
	proc.obs = crowdmap.NewMetricsRegistry()
	journal, err := pipeline.NewJournal(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc.journal = journal
	if err := proc.start(buildingWorkers); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.sched.Close)
	return proc
}

// failureCount reads a capture's failure count under the processor lock.
func failureCount(p *processor, id string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failures[id]
}

// TestProcessorQuarantinesPoisonCapture is the graceful-degradation
// acceptance test: a capture that makes reconstruction fail repeatedly is
// moved to the dead-letter collection, and the job then completes with
// the remaining corpus.
func TestProcessorQuarantinesPoisonCapture(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 4, 2)
	poison := ids[1]

	proc := newTestProcessor(t, st, 1)
	proc.reconstruct = func(_ context.Context, captures []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		for _, c := range captures {
			if c.ID == poison {
				return nil, fmt.Errorf("stage 1: %w",
					&crowdmap.CaptureError{CaptureID: poison, Err: errors.New("corrupt frames")})
			}
		}
		return stubResult("Lab2"), nil
	}

	ctx := context.Background()
	// Cycles 1 and 2: the poison capture fails the job; the building stays
	// dirty and each scan redrives it.
	for attempt := 1; attempt <= maxCaptureFailures-1; attempt++ {
		if err := proc.runOnce(ctx); err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if got := failureCount(proc, poison); got != attempt {
			t.Fatalf("attempt %d: failure count %d, want %d", attempt, got, attempt)
		}
	}
	if _, ok := st.Get(collDeadLetter, poison); ok {
		t.Fatal("capture quarantined before reaching the failure threshold")
	}
	// Cycle 3 hits the threshold: quarantine, then completion with the
	// remaining three captures inside the same job.
	if err := proc.runOnce(ctx); err != nil {
		t.Fatalf("cycle after quarantine: %v", err)
	}
	if _, ok := st.Get(collDeadLetter, poison); !ok {
		t.Error("poison capture not in dead-letter collection")
	}
	if _, ok := st.Get(server.CollCaptures, poison); ok {
		t.Error("poison capture still in the working set")
	}
	if _, ok := st.Get(server.CollPlans, "Lab2"); !ok {
		t.Error("plan not produced from the remaining corpus")
	}
	if v := proc.obs.Snapshot().Counters["captures.deadlettered"]; v != 1 {
		t.Errorf("captures.deadlettered = %d, want 1", v)
	}
	// The pair cache was persisted after the successful job.
	if _, ok := st.Get(collState, statePairCache); !ok {
		t.Error("pair cache not checkpointed")
	}
}

// TestProcessorSkipsCompletedJob: a building whose corpus is unchanged is
// not re-enqueued, and even a fresh scheduler (daemon restart) skips it
// via the plan-stage checkpoint.
func TestProcessorSkipsCompletedJob(t *testing.T) {
	st := store.New()
	seedCaptures(t, st, "Lab2", 3, 2)
	var calls int32
	stub := func(_ context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error) {
		atomic.AddInt32(&calls, 1)
		// Mimic the real pipeline's final checkpoint.
		if err := cfg.Checkpoints.Complete(cfg.JobID, crowdmap.StagePlan,
			crowdmap.CorpusFingerprint(captures), nil); err != nil {
			return nil, err
		}
		return stubResult("Lab2"), nil
	}
	proc := newTestProcessor(t, st, 1)
	proc.reconstruct = stub
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Fatalf("first cycle: %d reconstructions, want 1", calls)
	}
	// Unchanged corpus: the dirty-tracker does not even enqueue the job.
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("clean corpus re-reconstructed (%d calls)", calls)
	}
	// A restarted daemon (fresh scheduler state, same store+journal)
	// enqueues the building once but the plan-stage checkpoint skips the
	// actual reconstruction.
	proc2 := newTestProcessor(t, st, 1)
	proc2.reconstruct = stub
	if err := proc2.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("checkpointed job was reconstructed again after restart (%d calls)", calls)
	}
}

// TestProcessorReconstructsOnSwap is the regression test for the old
// `len(keys) == p.lastCount` cycle check: dead-lettering one capture
// while one new upload arrives keeps the capture *count* constant, and
// the old logic never reconstructed the new data. Fingerprint-based
// dirty tracking must.
func TestProcessorReconstructsOnSwap(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 4, 2)
	var calls int32
	var mu sync.Mutex
	var lastCorpus []string
	proc := newTestProcessor(t, st, 1)
	proc.reconstruct = func(_ context.Context, captures []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		atomic.AddInt32(&calls, 1)
		mu.Lock()
		lastCorpus = nil
		for _, c := range captures {
			lastCorpus = append(lastCorpus, c.ID)
		}
		mu.Unlock()
		return stubResult("Lab2"), nil
	}
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Fatalf("first cycle: %d calls, want 1", calls)
	}
	// The swap: one capture leaves the working set (as quarantine does),
	// one new upload lands. len(keys) is unchanged.
	if err := st.Delete(server.CollCaptures, ids[0]); err != nil {
		t.Fatal(err)
	}
	seedCaptures(t, st, "Lab2", 1, 99) // fresh content, same count
	if got := st.Len(server.CollCaptures); got != 4 {
		t.Fatalf("capture count after swap = %d, want 4 (the scenario the count check missed)", got)
	}
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&calls) != 2 {
		t.Fatalf("swapped corpus not reconstructed: %d calls, want 2", calls)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range lastCorpus {
		if id == ids[0] {
			t.Error("deleted capture still fed to reconstruction")
		}
	}
}

// TestTransientFailureNotCountedTowardQuarantine is the regression test
// for the poison-quarantine bug: a CaptureError whose cause is context
// cancellation (SIGTERM mid-extract, per-attempt retry deadline) must
// not increment the capture's failure count — three shutdowns used to
// dead-letter a healthy capture.
func TestTransientFailureNotCountedTowardQuarantine(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 3, 2)
	victim := ids[0]
	proc := newTestProcessor(t, st, 1)
	proc.reconstruct = func(ctx context.Context, _ []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		// A shutdown interrupts key-frame extraction of the victim.
		return nil, fmt.Errorf("stage 1: %w",
			&crowdmap.CaptureError{CaptureID: victim, Err: context.Canceled})
	}
	captures, keyByID, err := proc.buildingCaptures(context.Background(), "Lab2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxCaptureFailures; i++ {
		if err := proc.reconstructBuilding(context.Background(), "Lab2", captures, keyByID); err == nil {
			t.Fatal("interrupted reconstruction reported success")
		}
	}
	if got := failureCount(proc, victim); got != 0 {
		t.Errorf("cancellation charged %d failures to a healthy capture, want 0", got)
	}
	if _, ok := st.Get(collDeadLetter, victim); ok {
		t.Error("healthy capture dead-lettered by repeated shutdowns")
	}
	if _, ok := st.Get(server.CollCaptures, victim); !ok {
		t.Error("capture missing from the working set")
	}

	// DeadlineExceeded (per-attempt retry deadline) is equally transient.
	proc.reconstruct = func(ctx context.Context, _ []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		return nil, fmt.Errorf("stage 2: %w", context.DeadlineExceeded)
	}
	if err := proc.reconstructBuilding(context.Background(), "Lab2", captures, keyByID); err == nil {
		t.Fatal("deadline-exceeded reconstruction reported success")
	}
	if got := failureCount(proc, victim); got != 0 {
		t.Errorf("deadline charged %d failures, want 0", got)
	}
}

// TestSuccessResetsFailureCounts: a capture that participated in a
// successful cycle has its failure count cleared, so unrelated future
// failures start from zero instead of inheriting stale strikes.
func TestSuccessResetsFailureCounts(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 3, 2)
	proc := newTestProcessor(t, st, 1)
	proc.mu.Lock()
	proc.failures[ids[2]] = maxCaptureFailures - 1 // one strike from quarantine
	proc.mu.Unlock()
	proc.reconstruct = func(_ context.Context, _ []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		return stubResult("Lab2"), nil
	}
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := failureCount(proc, ids[2]); got != 0 {
		t.Errorf("failure count after successful cycle = %d, want 0", got)
	}
}

// TestReconstructBuildingQuarantineRetryLoop covers the in-job
// quarantine-then-retry loop: when a capture crosses the failure
// threshold mid-job, it is quarantined and the job immediately retries
// with the remaining corpus — one runBuilding call, two reconstruction
// attempts, and the input slice the caller holds is not clobbered by the
// filter.
func TestReconstructBuildingQuarantineRetryLoop(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 4, 2)
	poison := ids[1]
	proc := newTestProcessor(t, st, 1)
	proc.mu.Lock()
	proc.failures[poison] = maxCaptureFailures - 1 // next strike quarantines
	proc.mu.Unlock()
	var calls int32
	proc.reconstruct = func(_ context.Context, captures []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		atomic.AddInt32(&calls, 1)
		for _, c := range captures {
			if c.ID == poison {
				return nil, &crowdmap.CaptureError{CaptureID: poison, Err: errors.New("corrupt frames")}
			}
		}
		return stubResult("Lab2"), nil
	}
	captures, keyByID, err := proc.buildingCaptures(context.Background(), "Lab2")
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]*crowdmap.Capture(nil), captures...)
	if err := proc.reconstructBuilding(context.Background(), "Lab2", captures, keyByID); err != nil {
		t.Fatalf("quarantine-then-retry job failed: %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Errorf("reconstruction attempts = %d, want 2 (fail, quarantine, retry)", got)
	}
	if _, ok := st.Get(collDeadLetter, poison); !ok {
		t.Error("poison capture not quarantined")
	}
	// The caller's slice must be intact: the in-place captures[:0] filter
	// used to overwrite the array other views still referenced.
	for i, c := range orig {
		if captures[i] != c {
			t.Fatalf("caller slice clobbered at %d: %v != %v", i, captures[i].ID, c.ID)
		}
	}
}

// TestProcessorDeadLettersExcludedCaptures: when a reconstruction
// completes in degraded mode, the captures it excluded (quality gate,
// recovered panics) are dead-lettered immediately — no three-strike wait —
// while the survivors keep clean failure counts and the plan still lands.
func TestProcessorDeadLettersExcludedCaptures(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 4, 2)
	bad := ids[2]
	proc := newTestProcessor(t, st, 1)
	proc.reconstruct = func(_ context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error) {
		if cfg.Quality == nil {
			t.Error("processor did not pass quality params to the pipeline")
		}
		res := stubResult("Lab2")
		res.Excluded = []crowdmap.Exclusion{{
			CaptureID: bad,
			Stage:     crowdmap.StageQualityGate,
			Reasons:   []string{"imu_too_corrupt"},
		}}
		res.Coverage = crowdmap.Coverage{Input: len(captures), Used: len(captures) - 1, Excluded: 1, Degraded: true}
		return res, nil
	}
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatalf("degraded cycle failed: %v", err)
	}
	if _, ok := st.Get(collDeadLetter, bad); !ok {
		t.Error("excluded capture not dead-lettered")
	}
	if _, ok := st.Get(server.CollCaptures, bad); ok {
		t.Error("excluded capture still in working set")
	}
	if _, ok := st.Get(server.CollPlans, "Lab2"); !ok {
		t.Error("degraded plan not stored")
	}
	if v := proc.obs.Snapshot().Counters["captures.deadlettered"]; v != 1 {
		t.Errorf("captures.deadlettered = %d, want 1", v)
	}
	for _, id := range ids {
		if id != bad {
			if _, ok := st.Get(server.CollCaptures, id); !ok {
				t.Errorf("surviving capture %s missing from working set", id)
			}
		}
	}
}

// TestProcessorDeadLetterUsesStoreKey: nothing forces a client to upload
// an archive under the ID its meta.json declares, but exclusions and
// CaptureErrors carry the declared ID. Quarantine must translate that
// back to the store key, or the dead-letter move is a silent no-op (and
// a hostile archive declaring a victim's ID could get the victim's
// document quarantined in its place).
func TestProcessorDeadLetterUsesStoreKey(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 4, 2)
	declared := ids[3]
	uploadKey := "renamed-upload"
	// Re-file the last capture under a store key that differs from the ID
	// its metadata declares.
	data, _ := st.Get(server.CollCaptures, declared)
	if err := st.Put(server.CollCaptures, uploadKey, data); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(server.CollCaptures, declared); err != nil {
		t.Fatal(err)
	}
	proc := newTestProcessor(t, st, 1)
	proc.reconstruct = func(_ context.Context, captures []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		res := stubResult("Lab2")
		res.Excluded = []crowdmap.Exclusion{{
			CaptureID: declared, // the pipeline only knows the declared ID
			Stage:     crowdmap.StageQualityGate,
			Reasons:   []string{"imu_too_corrupt"},
		}}
		res.Coverage = crowdmap.Coverage{Input: len(captures), Used: len(captures) - 1, Excluded: 1, Degraded: true}
		return res, nil
	}
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatalf("degraded cycle failed: %v", err)
	}
	if _, ok := st.Get(collDeadLetter, uploadKey); !ok {
		t.Error("renamed capture not dead-lettered under its store key")
	}
	if _, ok := st.Get(server.CollCaptures, uploadKey); ok {
		t.Error("renamed capture still in working set")
	}
	for _, id := range ids[:3] {
		if _, ok := st.Get(server.CollCaptures, id); !ok {
			t.Errorf("innocent capture %s evicted from working set", id)
		}
	}
}

// TestBuildingCapturesSkipsDuplicateDeclaredIDs: two store documents
// decoding to the same declared capture ID would make failure
// attribution ambiguous, so only the first (in store key order) joins
// the corpus.
func TestBuildingCapturesSkipsDuplicateDeclaredIDs(t *testing.T) {
	st := store.New()
	ids := seedCaptures(t, st, "Lab2", 3, 2)
	data, _ := st.Get(server.CollCaptures, ids[0])
	if err := st.Put(server.CollCaptures, "zz-imposter", data); err != nil {
		t.Fatal(err)
	}
	proc := newTestProcessor(t, st, 1)
	captures, keyByID, err := proc.buildingCaptures(context.Background(), "Lab2")
	if err != nil {
		t.Fatal(err)
	}
	if len(captures) != 3 {
		t.Fatalf("corpus size = %d, want 3 (duplicate declared ID not skipped)", len(captures))
	}
	if got := keyByID[ids[0]]; got != ids[0] {
		t.Errorf("declared ID %q maps to store key %q, want the first document %q", ids[0], got, ids[0])
	}
}

// TestProcessorOverlappingBuildings is the end-to-end concurrency
// acceptance test: three buildings' corpora in one store, two building
// workers — two buildings reconstruct concurrently, the third waits, and
// no building runs twice at once. Plans land per building.
func TestProcessorOverlappingBuildings(t *testing.T) {
	st := store.New()
	buildings := []string{"B1", "B2", "B3"}
	for i, b := range buildings {
		seedCaptures(t, st, b, 3, int64(2+10*i))
	}
	proc := newTestProcessor(t, st, 2)
	var mu sync.Mutex
	inflight := make(map[string]int)
	var cur, peak int32
	release := make(chan struct{})
	started := make(chan string, len(buildings))
	proc.reconstruct = func(ctx context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error) {
		b := captures[0].Geo.Building
		mu.Lock()
		inflight[b]++
		if inflight[b] > 1 {
			t.Errorf("building %s reconstructing twice concurrently", b)
		}
		mu.Unlock()
		if n := atomic.AddInt32(&cur, 1); n > atomic.LoadInt32(&peak) {
			atomic.StoreInt32(&peak, n)
		}
		started <- b
		select {
		case <-release:
		case <-ctx.Done():
		}
		atomic.AddInt32(&cur, -1)
		mu.Lock()
		inflight[b]--
		mu.Unlock()
		return stubResult(b), nil
	}
	if err := proc.scan(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Two jobs in flight at once; the third queues behind them.
	<-started
	<-started
	select {
	case b := <-started:
		t.Fatalf("third building %s started with 2 workers", b)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := proc.sched.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Errorf("peak concurrent reconstructions = %d, want >= 2", peak)
	}
	for _, b := range buildings {
		if _, ok := st.Get(server.CollPlans, b); !ok {
			t.Errorf("no plan stored for %s", b)
		}
	}
}

// TestScanQuarantinesUndecodableCapture: a stored archive that stops
// decoding is counted toward quarantine by the scan (not skipped
// silently forever).
func TestScanQuarantinesUndecodableCapture(t *testing.T) {
	st := store.New()
	seedCaptures(t, st, "Lab2", 3, 2)
	if err := st.Put(server.CollCaptures, "junk", []byte("not a zip")); err != nil {
		t.Fatal(err)
	}
	proc := newTestProcessor(t, st, 1)
	proc.reconstruct = func(_ context.Context, _ []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		return stubResult("Lab2"), nil
	}
	for i := 0; i < maxCaptureFailures; i++ {
		if err := proc.runOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := st.Get(collDeadLetter, "junk"); !ok {
		t.Error("undecodable capture not quarantined after repeated scans")
	}
	if _, ok := st.Get(server.CollCaptures, "junk"); ok {
		t.Error("undecodable capture still in working set")
	}
}

// TestProcessorDeltaMode pins the -delta wiring: with delta on, building
// jobs go through the incremental entry point with a per-building state
// that persists across cycles, and the rebuild-interval knob reaches the
// pipeline config. Two buildings must never share a state.
func TestProcessorDeltaMode(t *testing.T) {
	st := store.New()
	seedCaptures(t, st, "Lab1", 3, 2)
	seedCaptures(t, st, "Lab2", 3, 20)

	proc := newTestProcessor(t, st, 1)
	proc.delta = true
	proc.rebuildEvery = 5
	var mu sync.Mutex
	states := make(map[string][]*crowdmap.DeltaState)
	var fullCalls atomic.Int64
	proc.reconstruct = func(_ context.Context, _ []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		fullCalls.Add(1)
		return nil, errors.New("batch entry point used in delta mode")
	}
	proc.reconstructDelta = func(_ context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config, state *crowdmap.DeltaState) (*crowdmap.Result, error) {
		if state == nil {
			return nil, errors.New("nil delta state")
		}
		if cfg.DeltaRebuildEvery != 5 {
			return nil, fmt.Errorf("DeltaRebuildEvery = %d, want 5", cfg.DeltaRebuildEvery)
		}
		b := captures[0].Geo.Building
		mu.Lock()
		states[b] = append(states[b], state)
		mu.Unlock()
		return stubResult(b), nil
	}

	ctx := context.Background()
	if err := proc.runOnce(ctx); err != nil {
		t.Fatal(err)
	}
	// New content makes both buildings dirty again for a second cycle.
	seedCaptures(t, st, "Lab1", 1, 90)
	seedCaptures(t, st, "Lab2", 1, 91)
	if err := proc.runOnce(ctx); err != nil {
		t.Fatal(err)
	}

	if n := fullCalls.Load(); n != 0 {
		t.Errorf("batch entry point called %d times in delta mode", n)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, b := range []string{"Lab1", "Lab2"} {
		if len(states[b]) != 2 {
			t.Fatalf("%s: %d delta runs, want 2", b, len(states[b]))
		}
		if states[b][0] != states[b][1] {
			t.Errorf("%s: delta state not persistent across cycles", b)
		}
	}
	if states["Lab1"][0] == states["Lab2"][0] {
		t.Error("buildings share one delta state")
	}
}

// TestProcessorPublishesToReadTier: completing a reconstruction publishes
// the result to the read tier (servable at version 1), and a later cycle
// that reconstructs identical content leaves the served version alone.
func TestProcessorPublishesToReadTier(t *testing.T) {
	st := store.New()
	seedCaptures(t, st, "Lab2", 3, 2)
	proc := newTestProcessor(t, st, 1)
	maps, err := mapserve.New(st, mapserve.WithObs(proc.obs))
	if err != nil {
		t.Fatal(err)
	}
	proc.maps = maps
	proc.reconstruct = func(_ context.Context, _ []*crowdmap.Capture, _ crowdmap.Config) (*crowdmap.Result, error) {
		return stubResult("Lab2"), nil
	}

	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	view, ok := maps.Plan("Lab2")
	if !ok {
		t.Fatal("completed reconstruction not published to the read tier")
	}
	if view.Version != 1 || view.ETag == "" {
		t.Fatalf("published identity = v%d etag %q, want version 1", view.Version, view.ETag)
	}
	if n := proc.obs.Snapshot().Counters["mapserve.publishes"]; n != 1 {
		t.Errorf("mapserve.publishes = %d, want 1", n)
	}

	// Grow the corpus so the building redrives, but keep the (stubbed)
	// reconstruction output identical: the republish must be a no-op.
	seedCaptures(t, st, "Lab2", 2, 40)
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	view2, ok := maps.Plan("Lab2")
	if !ok {
		t.Fatal("read tier lost the plan after a rebuild")
	}
	if view2.Version != view.Version || view2.ETag != view.ETag {
		t.Errorf("identical rebuild changed identity: v%d/%s -> v%d/%s",
			view.Version, view.ETag, view2.Version, view2.ETag)
	}
	if n := proc.obs.Snapshot().Counters["mapserve.publish.unchanged"]; n != 1 {
		t.Errorf("mapserve.publish.unchanged = %d, want 1", n)
	}
}
