// Command crowdmapd is the CrowdMap cloud backend daemon: it serves the
// chunked capture-upload API, periodically runs the reconstruction
// pipeline over everything uploaded so far, and publishes the resulting
// floor plan SVGs back through the same API — the full client→cloud loop
// of the paper's Section IV prototype on one machine.
//
// Usage:
//
//	crowdmapd [-addr :8080] [-interval 30s] [-snapshot store.json]
//	          [-hypotheses N] [-workers N] [-metrics]
//
// The HTTP API always serves GET /metrics with a JSON snapshot covering
// both ingestion (http.*, uploads.*) and reconstruction (stage.*,
// keyframe.*, compare.*, aggregate.*) — the server and the pipeline share
// one registry. The -metrics flag additionally logs a snapshot after every
// reconstruction cycle.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdmap"
	"crowdmap/internal/cloud/queue"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("crowdmapd: ")
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		interval   = flag.Duration("interval", 30*time.Second, "reconstruction interval")
		snapshot   = flag.String("snapshot", "", "optional store snapshot path (loaded at start, saved on exit)")
		hypotheses = flag.Int("hypotheses", 20000, "room layout hypotheses per panorama")
		workers    = flag.Int("workers", 0, "pipeline workers (0 = all CPUs)")
		metrics    = flag.Bool("metrics", false, "log a metrics snapshot after each reconstruction cycle")
	)
	flag.Parse()

	st := store.New()
	if *snapshot != "" {
		if err := st.LoadFile(*snapshot); err != nil {
			if !os.IsNotExist(err) {
				log.Printf("snapshot load: %v (starting empty)", err)
			}
		} else {
			log.Printf("loaded snapshot: %d captures, %d plans",
				st.Len(server.CollCaptures), st.Len(server.CollPlans))
		}
	}
	srv, err := server.New(st)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sched, err := queue.New(1, 4)
	if err != nil {
		log.Fatal(err)
	}
	// One registry spans ingestion and processing: the server created it,
	// the scheduler and the reconstruction pipeline feed it, and GET
	// /metrics exposes all of it.
	reg := srv.Metrics()
	sched.SetObs(reg)
	proc := newProcessor(st, *hypotheses, *workers)
	proc.obs = reg
	proc.logMetrics = *metrics
	stop, err := sched.Every(*interval, queue.Job{ID: "reconstruct", Run: proc.run})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for r := range sched.Results() {
			if r.Err != nil {
				log.Printf("job %s: %v", r.ID, r.Err)
			}
		}
	}()

	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	stop()
	sched.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if *snapshot != "" {
		if err := st.SaveFile(*snapshot); err != nil {
			log.Printf("snapshot save: %v", err)
		} else {
			log.Printf("saved snapshot to %s", *snapshot)
		}
	}
}

// processor runs the reconstruction pipeline over stored captures, grouped
// by the Task-1 geo tag (building), skipping reruns when nothing changed.
type processor struct {
	st         *store.Store
	hypotheses int
	workers    int
	lastCount  int
	obs        *crowdmap.MetricsRegistry
	logMetrics bool
	// cache persists pair-comparison decisions across reconstruction
	// cycles: when new uploads arrive, only pairs involving new content are
	// compared (the paper's incremental-aggregation scaling, minus the
	// Spark cluster).
	cache *crowdmap.PairCache
}

func newProcessor(st *store.Store, hypotheses, workers int) *processor {
	return &processor{st: st, hypotheses: hypotheses, workers: workers, cache: crowdmap.NewPairCache(0)}
}

func (p *processor) run(context.Context) error {
	keys := p.st.Keys(server.CollCaptures)
	if len(keys) == 0 || len(keys) == p.lastCount {
		return nil
	}
	log.Printf("reconstructing from %d captures", len(keys))
	byBuilding := make(map[string][]*crowdmap.Capture)
	for _, k := range keys {
		data, ok := p.st.Get(server.CollCaptures, k)
		if !ok {
			continue
		}
		c, err := server.DecodeCapture(data)
		if err != nil {
			log.Printf("decode %s: %v (skipping)", k, err)
			continue
		}
		byBuilding[c.Geo.Building] = append(byBuilding[c.Geo.Building], c)
	}
	for building, captures := range byBuilding {
		if len(captures) < 3 {
			log.Printf("%s: only %d captures, waiting for more", building, len(captures))
			continue
		}
		cfg := crowdmap.DefaultConfig()
		cfg.Layout.Hypotheses = p.hypotheses
		cfg.Workers = p.workers
		cfg.Metrics = p.obs
		cfg.PairCache = p.cache
		start := time.Now()
		res, err := crowdmap.Reconstruct(captures, cfg)
		if err != nil {
			log.Printf("%s: reconstruction failed: %v", building, err)
			continue
		}
		svg, err := res.Plan.RenderSVG()
		if err != nil {
			log.Printf("%s: render: %v", building, err)
			continue
		}
		if err := p.st.Put(server.CollPlans, building, svg); err != nil {
			log.Printf("%s: store plan: %v", building, err)
			continue
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "%s: plan updated (%d rooms, %d/%d tracks placed, %s)",
			building, len(res.Plan.Rooms), len(res.Aggregation.Offsets), len(res.Tracks),
			time.Since(start).Round(time.Millisecond))
		log.Print(buf.String())
	}
	p.lastCount = len(keys)
	if p.logMetrics && p.obs != nil {
		if data, err := json.Marshal(p.obs.Snapshot()); err == nil {
			log.Printf("metrics: %s", data)
		}
	}
	return nil
}
