// Command crowdmapd is the CrowdMap cloud backend daemon: it serves the
// chunked capture-upload API, continuously folds everything uploaded so
// far into per-building floor plans, and publishes the results back
// through the same API — the full client→cloud loop of the paper's
// Section IV prototype on one machine. Each completed reconstruction is
// additionally published to the read tier (internal/cloud/mapserve): a
// monotonically versioned plan served as vector JSON and an
// occupancy-grid PNG with ETag/If-None-Match revalidation, plus a
// localization endpoint that answers a single query frame (and optional
// IMU snippet) with a pose on the current plan, matched against a
// persisted per-building key-frame index (decoded indexes are held in an
// -index-cache-bounded LRU). The full HTTP reference is docs/API.md.
//
// Usage:
//
//	crowdmapd [-addr :8080] [-interval 30s] [-data-dir DIR] [-wal-sync always]
//	          [-snapshot store.json] [-hypotheses N] [-workers N]
//	          [-building-workers N] [-max-inflight-mb N] [-client-chunk-rate R]
//	          [-client-chunk-burst N] [-chunk-body-timeout D] [-drain-timeout D]
//	          [-quality lenient] [-mode vision] [-stage-budget D] [-delta]
//	          [-rebuild-every N] [-index-cache N] [-scrub-interval D] [-metrics]
//
// Reconstruction is scheduled per building: every -interval the capture
// corpus is scanned and grouped by building, and buildings whose corpus
// fingerprint changed are enqueued on a pool of -building-workers
// concurrent reconstruction jobs (one job per building at a time, fair
// FIFO between buildings). With -delta each building keeps incremental
// reconstruction state across cycles: a new upload costs only its own
// key-frame extraction and its pair comparisons against the existing
// corpus, with the occupancy grid patched and unchanged rooms reused —
// the plan is byte-identical to a full rebuild. -rebuild-every N forces
// a full rebuild every N-th cycle per building as a correctness backstop
// (0 = never); progress is visible on the reconstruct.delta.* metrics. The upload path applies admission control: a
// global in-flight chunk-byte budget (-max-inflight-mb) and a per-client
// token bucket (-client-chunk-rate/-client-chunk-burst) answer saturation
// with 429 + Retry-After instead of queueing without bound.
//
// Input quality is gated twice with one -quality policy (off | lenient |
// strict): a completed upload failing validation is refused with 422 and
// machine-readable reason codes (oversized archives get 413), and each
// reconstruction re-checks its corpus — captures failing there are
// excluded from the job, reported on the result, and dead-lettered, so a
// poisoned corpus degrades to its healthy subset instead of crashing or
// wedging the building. -stage-budget arms a soft per-stage watchdog that
// counts overruns on pipeline.budget.exceeded without cancelling work.
//
// -mode selects the reconstruction modalities (vision | trajectory |
// hybrid). Trajectory mode builds floor plans from dead-reckoned IMU
// walks alone; hybrid runs the vision pipeline but rescues captures whose
// video fails the gate into the trajectory path. In both, the upload gate
// additionally admits IMU-only captures (zero frames) on the inertial
// verdict alone, and the per-run routing is reported on the
// reconstruct.mode.* metrics.
//
// With -data-dir the daemon is durable: every document mutation and every
// acknowledged upload chunk goes through a write-ahead log before it is
// confirmed, reconstruction progress is checkpointed per stage, and a
// restart replays the log — partial uploads resume where they left off
// and finished buildings are not reprocessed. Without -data-dir the
// daemon is memory-only (the legacy -snapshot flag still saves/loads a
// JSON dump at exit/start).
//
// Every derived artifact above the WAL — checkpoints, track artifacts,
// the pair-cache export, SVG plans, and the read tier's plan records and
// localization indexes — is persisted under an integrity envelope
// (internal/cloud/integrity) and verified on every read: a flipped bit is
// quarantined and counted (integrity.*), never served, and the owning
// subsystem recomputes the artifact from surviving inputs. A paced
// background scrubber additionally walks all of them every
// -scrub-interval (plus one pass at startup; 0 disables), counting
// scrub.passes/docs/corrupt and redriving repair for whatever it finds —
// see docs/OPERATIONS.md for the corruption runbook.
//
// Graceful shutdown (SIGINT/SIGTERM): the server stops admitting uploads
// (503 + Retry-After), in-flight building jobs get -drain-timeout to
// finish (then their contexts are cancelled — stage checkpoints make the
// work resumable), the pair cache is persisted, and the WAL is compacted
// and synced before exit.
//
// The HTTP API always serves GET /metrics with a JSON snapshot covering
// ingestion (http.*, uploads.*, admission.*), durability (store.wal.*),
// scheduling (queue.*, sched.*, drain.*) and reconstruction (stage.*,
// keyframe.*, compare.*, aggregate.*, pipeline.resume.*) — every
// subsystem shares one registry. The -metrics flag additionally logs a
// snapshot after every scan.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdmap"
	"crowdmap/internal/cloud/mapserve"
	"crowdmap/internal/cloud/pipeline"
	"crowdmap/internal/cloud/queue"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
	"crowdmap/internal/obs"
	"crowdmap/internal/quality"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("crowdmapd: ")
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		interval   = flag.Duration("interval", 30*time.Second, "corpus scan interval")
		dataDir    = flag.String("data-dir", "", "durable data directory (WAL-backed store); empty = memory-only")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy: always | interval | never")
		snapshot   = flag.String("snapshot", "", "optional store snapshot path, memory-only mode (loaded at start, saved on exit)")
		hypotheses = flag.Int("hypotheses", 20000, "room layout hypotheses per panorama")
		workers    = flag.Int("workers", 0, "pipeline workers per reconstruction job (0 = all CPUs)")
		bWorkers   = flag.Int("building-workers", 2, "concurrent per-building reconstruction jobs")
		inflightMB = flag.Int("max-inflight-mb", 256, "global in-flight upload chunk budget, MiB (0 = unlimited)")
		chunkRate  = flag.Float64("client-chunk-rate", 0, "per-client sustained chunk uploads per second (0 = unlimited)")
		chunkBurst = flag.Int("client-chunk-burst", 16, "per-client chunk burst size")
		bodyTO     = flag.Duration("chunk-body-timeout", 30*time.Second, "read deadline for a chunk request body (0 = none)")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight building jobs")
		metrics    = flag.Bool("metrics", false, "log a metrics snapshot after each scan")
		qualityArg = flag.String("quality", "lenient", "capture quality gate: off | lenient | strict (applied at upload admission and again before reconstruction)")
		modeArg    = flag.String("mode", "vision", "reconstruction modalities: vision | trajectory | hybrid (trajectory/hybrid also admit IMU-only uploads)")
		stageTO    = flag.Duration("stage-budget", 0, "soft wall-clock budget per reconstruction stage; overruns are counted on pipeline.budget.exceeded, never cancelled (0 = off)")
		delta      = flag.Bool("delta", false, "incremental reconstruction: reuse per-capture stage artifacts across cycles so a new upload costs O(delta), not O(corpus)")
		rebuildN   = flag.Int("rebuild-every", 16, "with -delta, force a full rebuild every N-th cycle per building as a correctness backstop (0 = never)")
		indexCache = flag.Int("index-cache", mapserve.DefaultIndexCacheSize, "buildings whose decoded localization index stays in memory (LRU); raise for many hot buildings, lower under memory pressure")
		scrubInt   = flag.Duration("scrub-interval", 10*time.Minute, "background integrity-scrub interval over persisted artifacts (0 = off; one pass also runs at startup)")
	)
	flag.Parse()

	// The quality gate guards two doors with one policy: uploads that fail
	// it are refused with 422 + reason codes, and anything already stored
	// (or admitted while the gate was off) is re-checked before each
	// reconstruction, where failures become exclusions, not job errors.
	var gateParams *quality.Params
	if *qualityArg != "off" {
		pol, err := quality.ParsePolicy(*qualityArg)
		if err != nil {
			log.Fatalf("-quality: %v", err)
		}
		qp := quality.DefaultParams()
		qp.Policy = pol
		gateParams = &qp
	}
	mode, err := crowdmap.ParseMode(*modeArg)
	if err != nil {
		log.Fatalf("-mode: %v", err)
	}

	// One registry spans every subsystem: ingestion, WAL, scheduler and the
	// reconstruction pipeline all feed it, and GET /metrics exposes all of it.
	reg := obs.New()

	st := store.New()
	var wal *store.WAL
	serverOpts := []server.Option{
		server.WithObs(reg),
		// /readyz answers 503 until startup recovery and processor wiring
		// finish (MarkReady below), and again once shutdown drain begins.
		server.WithNotReady(),
		server.WithAdmission(server.AdmissionConfig{
			MaxInflightBytes: int64(*inflightMB) << 20,
			ClientRate:       *chunkRate,
			ClientBurst:      *chunkBurst,
			BodyTimeout:      *bodyTO,
		}),
	}
	if gateParams != nil {
		serverOpts = append(serverOpts, server.WithQualityGate(*gateParams))
		if mode != crowdmap.ModeVision {
			// Trajectory-capable deployments keep IMU-only and bad-video
			// uploads the full gate would 422; the pipeline routes them.
			serverOpts = append(serverOpts, server.WithIMUOnlyAdmission())
		}
	}
	if *dataDir != "" {
		pol, err := store.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		wal, err = store.OpenWAL(*dataDir, store.WALSync(pol), store.WALObs(reg))
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		st = wal.Store()
		recovered := wal.RecoveredUploads()
		log.Printf("wal: recovered %d captures, %d plans, %d partial uploads from %s",
			st.Len(server.CollCaptures), st.Len(server.CollPlans), len(recovered), *dataDir)
		serverOpts = append(serverOpts, server.WithChunkLog(wal), server.WithRecoveredUploads(recovered))
		if *snapshot != "" {
			log.Print("-snapshot is ignored when -data-dir is set")
		}
	} else if *snapshot != "" {
		if err := st.LoadFile(*snapshot); err != nil {
			if !os.IsNotExist(err) {
				log.Printf("snapshot load: %v (starting empty)", err)
			}
		} else {
			log.Printf("loaded snapshot: %d captures, %d plans",
				st.Len(server.CollCaptures), st.Len(server.CollPlans))
		}
	}
	// The read tier serves versioned plans (vector JSON + PNG, ETag/304)
	// and the localization endpoint; the processor publishes every
	// completed reconstruction into it.
	maps, err := mapserve.New(st,
		mapserve.WithObs(reg),
		mapserve.WithIndexCacheSize(*indexCache))
	if err != nil {
		log.Fatalf("mapserve: %v", err)
	}
	serverOpts = append(serverOpts, server.WithMapServe(maps))
	srv, err := server.New(st, serverOpts...)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// The queue scheduler drives the periodic corpus scan; the scan feeds
	// dirty buildings to the per-building scheduler inside the processor.
	scanSched, err := queue.New(1, 4)
	if err != nil {
		log.Fatal(err)
	}
	scanSched.SetObs(reg)
	journal, err := pipeline.NewJournal(st, reg)
	if err != nil {
		log.Fatal(err)
	}
	proc := newProcessor(st, *hypotheses, *workers)
	proc.obs = reg
	proc.logMetrics = *metrics
	proc.journal = journal
	proc.quality = gateParams
	proc.mode = mode
	proc.stageBudget = *stageTO
	proc.delta = *delta
	proc.rebuildEvery = *rebuildN
	proc.maps = maps
	proc.scrubPace = time.Millisecond
	// start wires the integrity keeper, so the pair-cache load (which
	// verifies the dump's envelope) must come after it.
	if err := proc.start(*bWorkers); err != nil {
		log.Fatal(err)
	}
	proc.loadPairCache()
	// The scan runs under the retry policy: transient store failures back
	// off and retry, and a scan that keeps failing is reported through the
	// dead-letter queue instead of silently looping.
	stop, err := scanSched.Every(*interval, scanSched.RetryJob(queue.Job{ID: "scan", Run: proc.scan}, queue.DefaultRetryPolicy()))
	if err != nil {
		log.Fatal(err)
	}
	// The background scrubber shares the scan queue: one integrity pass at
	// startup (catches rot from while the daemon was down), then every
	// -scrub-interval. Corruption is quarantined and repair redriven
	// through the normal scan/reconstruct path.
	stopScrub := func() {}
	if *scrubInt > 0 {
		scrubJob := scanSched.RetryJob(queue.Job{ID: "scrub", Run: proc.scrub}, queue.DefaultRetryPolicy())
		if stopScrub, err = scanSched.Every(*scrubInt, scrubJob); err != nil {
			log.Fatal(err)
		}
		if err := scanSched.Submit(scrubJob); err != nil {
			log.Printf("startup scrub: %v", err)
		}
	}
	go func() {
		for r := range scanSched.Results() {
			if r.Err != nil {
				log.Printf("job %s: %v", r.ID, r.Err)
			}
		}
	}()

	srv.MarkReady()
	go func() {
		log.Printf("listening on %s (%d building workers)", *addr, *bWorkers)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down: draining")
	// 1. Stop admitting uploads (clients get 503 + Retry-After and resume
	//    against the restarted daemon), then stop scheduling new scans.
	srv.StartDrain()
	stop()
	stopScrub()
	scanSched.Close()
	for _, d := range scanSched.DeadLetters() {
		log.Printf("dead-letter: job %s failed %d attempts: %s", d.JobID, d.Attempts, d.Err)
	}
	// 2. Give in-flight building jobs the drain budget; past it their
	//    contexts are cancelled and the stage checkpoints make them
	//    resumable on restart.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTO)
	if err := proc.sched.Drain(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	cancelDrain()
	proc.sched.Close()
	// 3. Flush state: HTTP listener, pair cache, WAL.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	_ = httpSrv.Shutdown(httpCtx)
	proc.savePairCache()
	if wal != nil {
		if err := wal.Compact(); err != nil {
			log.Printf("wal compact: %v", err)
		}
		if err := wal.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	} else if *snapshot != "" {
		if err := st.SaveFile(*snapshot); err != nil {
			log.Printf("snapshot save: %v", err)
		} else {
			log.Printf("saved snapshot to %s", *snapshot)
		}
	}
	if *metrics {
		if data, err := json.Marshal(reg.Snapshot()); err == nil {
			log.Printf("final metrics: %s", data)
		}
	}
	log.Print("shutdown complete")
}
