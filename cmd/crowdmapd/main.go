// Command crowdmapd is the CrowdMap cloud backend daemon: it serves the
// chunked capture-upload API, periodically runs the reconstruction
// pipeline over everything uploaded so far, and publishes the resulting
// floor plan SVGs back through the same API — the full client→cloud loop
// of the paper's Section IV prototype on one machine.
//
// Usage:
//
//	crowdmapd [-addr :8080] [-interval 30s] [-data-dir DIR] [-wal-sync always]
//	          [-snapshot store.json] [-hypotheses N] [-workers N] [-metrics]
//
// With -data-dir the daemon is durable: every document mutation and every
// acknowledged upload chunk goes through a write-ahead log before it is
// confirmed, reconstruction progress is checkpointed per stage, and a
// restart replays the log — partial uploads resume where they left off
// and finished buildings are not reprocessed. Without -data-dir the
// daemon is memory-only (the legacy -snapshot flag still saves/loads a
// JSON dump at exit/start).
//
// The HTTP API always serves GET /metrics with a JSON snapshot covering
// ingestion (http.*, uploads.*), durability (store.wal.*), scheduling
// (queue.*) and reconstruction (stage.*, keyframe.*, compare.*,
// aggregate.*, pipeline.resume.*) — every subsystem shares one registry.
// The -metrics flag additionally logs a snapshot after every
// reconstruction cycle.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdmap/internal/cloud/pipeline"
	"crowdmap/internal/cloud/queue"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
	"crowdmap/internal/obs"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("crowdmapd: ")
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		interval   = flag.Duration("interval", 30*time.Second, "reconstruction interval")
		dataDir    = flag.String("data-dir", "", "durable data directory (WAL-backed store); empty = memory-only")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy: always | interval | never")
		snapshot   = flag.String("snapshot", "", "optional store snapshot path, memory-only mode (loaded at start, saved on exit)")
		hypotheses = flag.Int("hypotheses", 20000, "room layout hypotheses per panorama")
		workers    = flag.Int("workers", 0, "pipeline workers (0 = all CPUs)")
		metrics    = flag.Bool("metrics", false, "log a metrics snapshot after each reconstruction cycle")
	)
	flag.Parse()

	// One registry spans every subsystem: ingestion, WAL, scheduler and the
	// reconstruction pipeline all feed it, and GET /metrics exposes all of it.
	reg := obs.New()

	st := store.New()
	var wal *store.WAL
	serverOpts := []server.Option{server.WithObs(reg)}
	if *dataDir != "" {
		pol, err := store.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		wal, err = store.OpenWAL(*dataDir, store.WALSync(pol), store.WALObs(reg))
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		st = wal.Store()
		recovered := wal.RecoveredUploads()
		log.Printf("wal: recovered %d captures, %d plans, %d partial uploads from %s",
			st.Len(server.CollCaptures), st.Len(server.CollPlans), len(recovered), *dataDir)
		serverOpts = append(serverOpts, server.WithChunkLog(wal), server.WithRecoveredUploads(recovered))
		if *snapshot != "" {
			log.Print("-snapshot is ignored when -data-dir is set")
		}
	} else if *snapshot != "" {
		if err := st.LoadFile(*snapshot); err != nil {
			if !os.IsNotExist(err) {
				log.Printf("snapshot load: %v (starting empty)", err)
			}
		} else {
			log.Printf("loaded snapshot: %d captures, %d plans",
				st.Len(server.CollCaptures), st.Len(server.CollPlans))
		}
	}
	srv, err := server.New(st, serverOpts...)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sched, err := queue.New(1, 4)
	if err != nil {
		log.Fatal(err)
	}
	sched.SetObs(reg)
	journal, err := pipeline.NewJournal(st, reg)
	if err != nil {
		log.Fatal(err)
	}
	proc := newProcessor(st, *hypotheses, *workers)
	proc.obs = reg
	proc.logMetrics = *metrics
	proc.journal = journal
	proc.loadPairCache()
	// Each cycle runs under the retry policy: transient failures back off
	// and retry, and a cycle that keeps failing is reported through the
	// dead-letter queue instead of silently looping.
	stop, err := sched.Every(*interval, sched.RetryJob(queue.Job{ID: "reconstruct", Run: proc.run}, queue.DefaultRetryPolicy()))
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for r := range sched.Results() {
			if r.Err != nil {
				log.Printf("job %s: %v", r.ID, r.Err)
			}
		}
	}()

	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	stop()
	sched.Close()
	for _, d := range sched.DeadLetters() {
		log.Printf("dead-letter: job %s failed %d attempts: %s", d.JobID, d.Attempts, d.Err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	proc.savePairCache()
	if wal != nil {
		if err := wal.Compact(); err != nil {
			log.Printf("wal compact: %v", err)
		}
		if err := wal.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	} else if *snapshot != "" {
		if err := st.SaveFile(*snapshot); err != nil {
			log.Printf("snapshot save: %v", err)
		} else {
			log.Printf("saved snapshot to %s", *snapshot)
		}
	}
	if *metrics {
		if data, err := json.Marshal(reg.Snapshot()); err == nil {
			log.Printf("final metrics: %s", data)
		}
	}
}
