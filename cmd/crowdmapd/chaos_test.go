package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"crowdmap"
	"crowdmap/internal/cloud/faultfs"
	"crowdmap/internal/cloud/mapserve"
	"crowdmap/internal/cloud/pipeline"
	"crowdmap/internal/cloud/server"
	"crowdmap/internal/cloud/store"
	"crowdmap/internal/crowd"
	"crowdmap/internal/geom"
	"crowdmap/internal/mathx"
	"crowdmap/internal/world"
)

// chaosReconstruct is a deterministic corpus-dependent reconstruction
// stub: the plan mask is derived from the corpus fingerprint, so a plan
// built from the wrong capture set renders different bytes and the
// DeepEqual-against-clean-run invariant has teeth. It checkpoints the
// plan stage like the real pipeline.
func chaosReconstruct(_ context.Context, captures []*crowdmap.Capture, cfg crowdmap.Config) (*crowdmap.Result, error) {
	fp := crowdmap.CorpusFingerprint(captures)
	res := stubResult(cfg.JobID)
	mask := res.Plan.HallwayMask
	for i := range mask.Cells {
		mask.Cells[i] = fp[i%len(fp)]&1 == 1
	}
	_ = cfg.Checkpoints.Complete(cfg.JobID, crowdmap.StagePlan, fp, nil)
	return res, nil
}

// chaosCaptures pre-encodes n upload archives for one building.
func chaosCaptures(t *testing.T, building string, n int) (ids []string, archives [][]byte) {
	t.Helper()
	users, err := crowd.NewPopulation(1, 0, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := crowd.NewGenerator(world.Lab2())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-chaos-%d", building, i)
		c, err := gen.SWS(id, users[0], geom.P(3, 7.5), geom.P(14, 7.5), mathx.NewRNG(int64(900+i)))
		if err != nil {
			t.Fatal(err)
		}
		c.Geo.Building = building
		data, err := server.EncodeCapture(c)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		archives = append(archives, data)
	}
	return ids, archives
}

// chaosProcessor builds a started processor (journal + mapserve read tier
// over st) without registering any test cleanup: the chaos loop opens and
// closes one per simulated process lifetime.
func chaosProcessor(t *testing.T, st *store.Store) *processor {
	t.Helper()
	proc := newProcessor(st, 100, 1)
	proc.obs = crowdmap.NewMetricsRegistry()
	journal, err := pipeline.NewJournal(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc.journal = journal
	if err := proc.start(1); err != nil {
		t.Fatal(err)
	}
	maps, err := mapserve.New(st, mapserve.WithObs(proc.obs))
	if err != nil {
		t.Fatal(err)
	}
	proc.maps = maps
	proc.reconstruct = chaosReconstruct
	proc.loadPairCache()
	return proc
}

// cleanRunPlan reconstructs the given acknowledged corpus on a pristine
// in-memory store and returns the stored plan payload and served ETag —
// the reference a chaos survivor must match byte for byte.
func cleanRunPlan(t *testing.T, building string, ids []string, archives map[string][]byte) ([]byte, string) {
	t.Helper()
	st := store.New()
	for _, id := range ids {
		if err := st.Put(server.CollCaptures, id, archives[id]); err != nil {
			t.Fatal(err)
		}
	}
	proc := chaosProcessor(t, st)
	defer proc.sched.Close()
	if err := proc.runOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	svg, ok, err := proc.keep.Get(server.CollPlans, building)
	if err != nil || !ok {
		t.Fatalf("clean run produced no plan: (%v, %v)", ok, err)
	}
	pv, ok := proc.maps.Plan(building)
	if !ok {
		t.Fatal("clean run served no plan")
	}
	return svg, pv.ETag
}

// corruptRandomArtifact flips one bit in a randomly chosen derived
// artifact (never a capture: uploads are the source of truth that repair
// recomputes everything else from). Returns what it hit, or "" if nothing
// derived exists yet.
func corruptRandomArtifact(t *testing.T, st *store.Store, rng *rand.Rand) string {
	t.Helper()
	type doc struct{ coll, key string }
	var docs []doc
	for _, coll := range []string{server.CollPlans, mapserve.CollServe, pipeline.CheckpointColl, collState} {
		for _, key := range st.Keys(coll) {
			docs = append(docs, doc{coll, key})
		}
	}
	if len(docs) == 0 {
		return ""
	}
	d := docs[rng.Intn(len(docs))]
	raw, _ := st.Get(d.coll, d.key)
	mut := append([]byte(nil), raw...)
	mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
	if err := st.Put(d.coll, d.key, mut); err != nil {
		t.Fatal(err)
	}
	return d.coll + "/" + d.key
}

// TestChaosKillCorruptRestart is the randomized chaos harness: each
// iteration uploads one capture, then either crashes the process at a
// random byte of subsequent WAL writes, silently corrupts a random
// persisted artifact, or does nothing — and restarts. After every
// recovery the invariants must hold:
//
//  1. every acknowledged upload is still present,
//  2. the served plan is byte-identical to a clean run over exactly the
//     acknowledged corpus (corrupt bytes are never served),
//  3. the served plan version never regresses.
func TestChaosKillCorruptRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is slow; skipped with -short")
	}
	const building = "Lab2"
	ids, archives := chaosCaptures(t, building, 6)
	byID := make(map[string][]byte, len(ids))
	for i, id := range ids {
		byID[id] = archives[i]
	}

	dir := t.TempDir()
	flaky := faultfs.NewFlaky(faultfs.Dir(dir))
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()

	var acked []string
	var lastVersion uint64
	for i, id := range ids {
		// --- faulty process lifetime -------------------------------------
		w, err := store.OpenWAL(dir, store.WALFS(flaky))
		if err != nil {
			t.Fatalf("iter %d: clean open failed: %v", i, err)
		}
		st := w.Store()
		proc := chaosProcessor(t, st)

		// Upload before the fault arms: Put returning nil is the ack, and
		// with SyncAlways an acked record is durable.
		if err := st.Put(server.CollCaptures, id, byID[id]); err == nil {
			acked = append(acked, id)
		}

		action := [3]string{"kill", "corrupt", "clean"}[i%3]
		switch action {
		case "kill":
			flaky.FailWritesAfter(rng.Int63n(4096))
		case "corrupt":
			if hit := corruptRandomArtifact(t, st, rng); hit != "" {
				t.Logf("iter %d: corrupted %s", i, hit)
			}
		}
		// Processing may fail mid-flight under an armed fault; that is the
		// crash being simulated.
		_ = proc.runOnce(ctx)
		_ = proc.scrub(ctx)
		proc.sched.Close()
		_ = w.Close()
		flaky.HealWrites()
		flaky.HealReads()

		// --- recovery process lifetime -----------------------------------
		w2, err := store.OpenWAL(dir, store.WALFS(flaky))
		if err != nil {
			t.Fatalf("iter %d (%s): recovery open failed: %v", i, action, err)
		}
		st2 := w2.Store()
		proc2 := chaosProcessor(t, st2)
		if err := proc2.runOnce(ctx); err != nil {
			t.Fatalf("iter %d (%s): recovery runOnce: %v", i, action, err)
		}
		if err := proc2.scrub(ctx); err != nil {
			t.Fatalf("iter %d (%s): recovery scrub: %v", i, action, err)
		}
		if err := proc2.sched.Wait(ctx); err != nil {
			t.Fatalf("iter %d (%s): recovery wait: %v", i, action, err)
		}

		// Invariant 1: acknowledged uploads survive.
		for _, a := range acked {
			if _, ok := st2.Get(server.CollCaptures, a); !ok {
				t.Fatalf("iter %d (%s): acked upload %s lost", i, action, a)
			}
		}
		// The processor holds off below 3 captures; the plan invariants
		// apply once the acknowledged corpus crosses that threshold.
		if len(acked) < 3 {
			proc2.sched.Close()
			if err := w2.Close(); err != nil {
				t.Fatalf("iter %d (%s): clean close: %v", i, action, err)
			}
			continue
		}
		// Invariant 2: the plan equals a clean run over the acked corpus,
		// both the stored document and the served version (by ETag).
		want, wantETag := cleanRunPlan(t, building, acked, byID)
		got, ok, err := proc2.keep.Get(server.CollPlans, building)
		if err != nil || !ok {
			t.Fatalf("iter %d (%s): plan unreadable after recovery: (%v, %v)", i, action, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d (%s): recovered plan diverges from clean run (%d vs %d bytes)",
				i, action, len(got), len(want))
		}
		// Invariant 3: the served version never regresses, and the read
		// tier verifies end to end.
		pv, ok := proc2.maps.Plan(building)
		if !ok {
			t.Fatalf("iter %d (%s): read tier serves no plan", i, action)
		}
		if pv.ETag != wantETag {
			t.Fatalf("iter %d (%s): served plan diverges from clean run (etag %.12s vs %.12s)",
				i, action, pv.ETag, wantETag)
		}
		if pv.Version < lastVersion {
			t.Fatalf("iter %d (%s): served version regressed %d -> %d", i, action, lastVersion, pv.Version)
		}
		lastVersion = pv.Version
		if published, err := proc2.maps.Verify(building); !published || err != nil {
			t.Fatalf("iter %d (%s): read tier unhealthy: (%v, %v)", i, action, published, err)
		}

		proc2.sched.Close()
		if err := w2.Close(); err != nil {
			t.Fatalf("iter %d (%s): clean close: %v", i, action, err)
		}
	}
	if len(acked) != len(ids) {
		t.Fatalf("only %d/%d uploads acknowledged (all Puts ran unfaulted)", len(acked), len(ids))
	}
}
