// Command datagen synthesizes a crowdsourced capture corpus for one
// building and writes each capture session as an upload archive (the same
// zip format the mobile front-end ships), ready to feed crowdmapd.
//
// Usage:
//
//	datagen [-building Lab2] [-walks N] [-visits N] [-users N] [-night F]
//	        [-seed N] [-imu-only] -out DIR
//
// With -imu-only every archive is stripped of its video before encoding —
// frame-less IMU uploads, the corpus shape a crowdmapd running -mode
// trajectory ingests.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"crowdmap"
	"crowdmap/internal/cloud/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		building = flag.String("building", "Lab2", "evaluation building: Lab1, Lab2 or Gym")
		walks    = flag.Int("walks", 20, "number of SWS hallway captures")
		visits   = flag.Int("visits", 12, "number of room-visit captures")
		users    = flag.Int("users", 10, "simulated user population")
		night    = flag.Float64("night", 0.3, "fraction of users capturing at night")
		seed     = flag.Int64("seed", 1, "dataset seed")
		imuOnly  = flag.Bool("imu-only", false, "strip video: write frame-less IMU-only archives (for -mode trajectory daemons)")
		outDir   = flag.String("out", "", "output directory for capture archives (required)")
	)
	flag.Parse()
	if *outDir == "" {
		log.Fatal("-out is required")
	}
	b, err := crowdmap.BuildingByName(*building)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}
	ds, err := crowdmap.GenerateDataset(b, crowdmap.DatasetSpec{
		Users:         *users,
		CorridorWalks: *walks,
		RoomVisits:    *visits,
		NightFraction: *night,
		Seed:          *seed,
		FPS:           3.5,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	var total int64
	for _, c := range ds.Captures {
		if *imuOnly {
			cc := *c
			cc.Frames = nil
			cc.FPS = 0
			c = &cc
		}
		data, err := server.EncodeCapture(c)
		if err != nil {
			log.Fatalf("encode %s: %v", c.ID, err)
		}
		path := filepath.Join(*outDir, c.ID+".zip")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		total += int64(len(data))
	}
	frames := ds.FrameCount()
	if *imuOnly {
		frames = 0
	}
	fmt.Printf("wrote %d capture archives (%d frames, %.1f MiB) to %s\n",
		len(ds.Captures), frames, float64(total)/(1<<20), *outDir)
}
