// Command experiments regenerates every table and figure of the CrowdMap
// paper's evaluation on the synthetic testbed and prints the same rows and
// series the paper reports.
//
// Usage:
//
//	experiments [-run tableI|fig6|fig7a|fig7b|fig7c|fig8|fig8c|fig9|all]
//	            [-quick] [-seed N] [-workers N] [-out DIR] [-metrics]
//
// With -metrics the harness attaches a metrics registry to every pipeline
// run and prints per-stage timing totals (and writes metrics.json when -out
// is set) after the experiments finish.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"crowdmap"
	"crowdmap/internal/experiments"
	"crowdmap/internal/mathx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "all", "experiment to run: tableI, fig6, fig7a, fig7b, fig7c, fig8, fig8c, fig9, all")
		quick   = flag.Bool("quick", false, "reduced workload for smoke runs")
		seed    = flag.Int64("seed", 2015, "dataset generation seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		outDir  = flag.String("out", "", "directory for JSON/SVG artifacts (optional)")
		metrics = flag.Bool("metrics", false, "report pipeline stage timings after the runs")
	)
	flag.Parse()

	var reg *crowdmap.MetricsRegistry
	if *metrics {
		reg = crowdmap.NewMetricsRegistry()
	}
	suite := experiments.NewSuite(experiments.Options{
		Quick: *quick, Seed: *seed, Workers: *workers, Obs: reg,
	})
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatalf("create output dir: %v", err)
		}
	}
	selected := strings.Split(*run, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}
	start := time.Now()
	if want("tableI") {
		runTableI(suite, *outDir)
	}
	if want("fig6") {
		runFig6(suite, *outDir)
	}
	if want("fig7a") {
		runFig7a(suite, *outDir)
	}
	if want("fig7b") {
		runFig7b(suite, *outDir)
	}
	if want("fig7c") {
		runFig7c(suite, *outDir)
	}
	if want("fig8") {
		runFig8(suite, *outDir)
	}
	if want("fig8c") {
		runFig8c(suite, *outDir)
	}
	if want("fig9") {
		runFig9(suite, *outDir)
	}
	fmt.Printf("\ntotal wall time: %s\n", time.Since(start).Round(time.Second))
	if reg != nil {
		snap := reg.Snapshot()
		fmt.Println("\n== Pipeline metrics ==")
		for _, name := range snap.StageNames() {
			if line := snap.StageSummary(name); line != "" {
				fmt.Println("  " + line)
			}
		}
		if kept := snap.Counters["keyframe.kept"]; kept > 0 {
			fmt.Printf("  keyframes: %d kept / %d frames\n", kept, snap.Counters["keyframe.frames"])
		}
		if s1 := snap.Counters["compare.s1.evaluated"]; s1 > 0 {
			fmt.Printf("  compare: S1 %d→%d passed, S2 %d→%d passed\n",
				s1, snap.Counters["compare.s1.passed"],
				snap.Counters["compare.s2.evaluated"], snap.Counters["compare.s2.passed"])
		}
		save(*outDir, "metrics.json", snap)
	}
}

func save(outDir, name string, v interface{}) {
	if outDir == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Printf("marshal %s: %v", name, err)
		return
	}
	if err := os.WriteFile(filepath.Join(outDir, name), data, 0o644); err != nil {
		log.Printf("write %s: %v", name, err)
	}
}

func runTableI(s *experiments.Suite, outDir string) {
	fmt.Println("== Table I: Hallway Shape Evaluation ==")
	fmt.Println("(paper: Lab1 87.5/93.3/90.3, Lab2 92.2/95.9/94.0, Gym 84.3/88.8/86.5)")
	rows, err := s.TableI()
	if err != nil {
		log.Fatalf("tableI: %v", err)
	}
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "", "Precision", "Recall", "F-Measure")
	for _, r := range rows {
		fmt.Printf("%-8s %-12.1f %-12.1f %-12.1f\n", r.Building, r.Precision*100, r.Recall*100, r.F*100)
	}
	save(outDir, "tableI.json", rows)
	fmt.Println()
}

func runFig6(s *experiments.Suite, outDir string) {
	fmt.Println("== Fig. 6: Ground truth vs reconstructed floor plan (Lab1) ==")
	res, err := s.Fig6()
	if err != nil {
		log.Fatalf("fig6: %v", err)
	}
	fmt.Println("--- ground truth ---")
	fmt.Println(res.TruthASCII)
	fmt.Println("--- reconstruction ---")
	fmt.Println(res.ASCII)
	fmt.Printf("summary: %s\n\n", res.Report)
	if outDir != "" {
		if err := os.WriteFile(filepath.Join(outDir, "fig6_lab1.svg"), res.SVG, 0o644); err != nil {
			log.Printf("write fig6 svg: %v", err)
		}
	}
}

func runFig7a(s *experiments.Suite, outDir string) {
	fmt.Println("== Fig. 7(a): Matching accuracy vs number of user trajectories ==")
	fmt.Println("(paper: sequence-based stays high; single-image degrades past ~65)")
	res, err := s.Fig7a()
	if err != nil {
		log.Fatalf("fig7a: %v", err)
	}
	fmt.Printf("%-14s %-24s %-24s\n", "#Trajectories", "Single Image Acc (%)", "Sequence-Based Acc (%)")
	for i, n := range res.N {
		fmt.Printf("%-14d %-24.1f %-24.1f\n", n, res.SingleAccuracy[i]*100, res.SeqAccuracy[i]*100)
	}
	save(outDir, "fig7a.json", res)
	fmt.Println()
}

func runFig7b(s *experiments.Suite, outDir string) {
	fmt.Println("== Fig. 7(b): Aggregation error rate vs portion of night trajectories ==")
	fmt.Println("(paper: error stays in a modest band across the whole mix)")
	res, err := s.Fig7b()
	if err != nil {
		log.Fatalf("fig7b: %v", err)
	}
	fmt.Printf("%-18s %-20s\n", "Night portion (%)", "Error rate (%)")
	for i := range res.NightPercent {
		fmt.Printf("%-18.0f %-20.1f\n", res.NightPercent[i], res.ErrorRate[i]*100)
	}
	save(outDir, "fig7b.json", res)
	fmt.Println()
}

func runFig7c(s *experiments.Suite, outDir string) {
	fmt.Println("== Fig. 7(c): User trajectory matching latency CDF ==")
	res, err := s.Fig7c()
	if err != nil {
		log.Fatalf("fig7c: %v", err)
	}
	fmt.Printf("pair comparisons: %d, mean %.3f s, median %.3f s, p90 %.3f s, max %.3f s\n",
		len(res.PairSeconds),
		mathx.Mean(res.PairSeconds),
		mathx.Median(res.PairSeconds),
		mathx.Percentile(res.PairSeconds, 90),
		res.CDF.Max())
	fmt.Printf("key-frame comparisons: %d, mean %.4f s\n",
		len(res.KeyframeSeconds), mathx.Mean(res.KeyframeSeconds))
	if xs, ps, err := res.CDF.Series(9); err == nil {
		fmt.Println("CDF (latency s → fraction):")
		for i := range xs {
			fmt.Printf("  %.3f → %.2f\n", xs[i], ps[i])
		}
	}
	save(outDir, "fig7c.json", res.PairSeconds)
	fmt.Println()
}

func runFig8(s *experiments.Suite, outDir string) {
	fmt.Println("== Fig. 8(a)/(b): Room area and aspect-ratio error, visual vs inertial ==")
	fmt.Println("(paper: area 9.8% vs 22.5%; aspect 6.5% vs 15.1%)")
	res, err := s.Fig8()
	if err != nil {
		log.Fatalf("fig8: %v", err)
	}
	fmt.Printf("%-22s %-14s %-14s\n", "", "Visual", "Inertial")
	fmt.Printf("%-22s %-14.1f %-14.1f\n", "mean area error (%)", res.MeanVisualArea()*100, res.MeanInertialArea()*100)
	fmt.Printf("%-22s %-14.1f %-14.1f\n", "mean aspect error (%)", res.MeanVisualAspect()*100, res.MeanInertialAspect()*100)
	printCDF := func(label string, samples []float64) {
		cdf := mathx.NewCDF(samples)
		fmt.Printf("  %s: p50=%.1f%% p90=%.1f%% max=%.1f%% (n=%d)\n",
			label, cdf.Quantile(0.5)*100, cdf.Quantile(0.9)*100, cdf.Max()*100, len(samples))
	}
	printCDF("visual area", res.VisualArea)
	printCDF("inertial area", res.InertialArea)
	printCDF("visual aspect", res.VisualAspect)
	printCDF("inertial aspect", res.InertialAspect)
	save(outDir, "fig8.json", res)
	fmt.Println()
}

func runFig8c(s *experiments.Suite, outDir string) {
	fmt.Println("== Fig. 8(c): Room location error per building ==")
	fmt.Println("(paper: means 1.2 / 1.5 / 1.2 m; Gym max 5 m)")
	res, err := s.Fig8c()
	if err != nil {
		log.Fatalf("fig8c: %v", err)
	}
	for _, name := range []string{"Lab1", "Lab2", "Gym"} {
		fmt.Printf("%-6s mean %.2f m, max %.2f m (n=%d)\n",
			name, res.Mean[name], res.Max[name], len(res.Errors[name]))
	}
	save(outDir, "fig8c.json", res)
	fmt.Println()
}

func runFig9(s *experiments.Suite, outDir string) {
	fmt.Println("== Fig. 9: SfM camera positions vs CrowdMap hybrid tracking ==")
	fmt.Println("(paper: SfM unreliable in cluttered/featureless interiors)")
	rows, err := s.Fig9()
	if err != nil {
		log.Fatalf("fig9: %v", err)
	}
	fmt.Printf("%-32s %-12s %-10s %-12s %-10s\n", "Environment", "SfM RMSE", "SfM fails", "Hybrid RMSE", "feat/frame")
	for _, r := range rows {
		fmt.Printf("%-32s %-12.2f %-10d %-12.2f %-10.0f\n",
			r.Environment, r.SfMRMSE, r.SfMFailures, r.HybridRMSE, r.AvgFeatures)
	}
	save(outDir, "fig9.json", rows)
	fmt.Println()
}
