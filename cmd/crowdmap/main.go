// Command crowdmap runs the full reconstruction pipeline end-to-end on a
// synthetic crowdsourced dataset for one building and reports the quality
// against ground truth.
//
// Usage:
//
//	crowdmap [-building Lab1|Lab2|Gym] [-walks N] [-visits N] [-users N]
//	         [-night F] [-seed N] [-hypotheses N] [-svg plan.svg] [-ascii]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"crowdmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crowdmap: ")
	var (
		building   = flag.String("building", "Lab2", "evaluation building: Lab1, Lab2 or Gym")
		walks      = flag.Int("walks", 20, "number of SWS hallway captures")
		visits     = flag.Int("visits", 12, "number of room-visit captures")
		users      = flag.Int("users", 10, "simulated user population")
		night      = flag.Float64("night", 0.3, "fraction of users capturing at night")
		seed       = flag.Int64("seed", 1, "dataset seed")
		hypotheses = flag.Int("hypotheses", 20000, "room layout hypotheses per panorama")
		svgPath    = flag.String("svg", "", "write the reconstructed plan as SVG to this path")
		ascii      = flag.Bool("ascii", true, "print the reconstructed plan as ASCII")
		workers    = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	)
	flag.Parse()

	b, err := crowdmap.BuildingByName(*building)
	if err != nil {
		log.Fatal(err)
	}
	spec := crowdmap.DatasetSpec{
		Users:         *users,
		CorridorWalks: *walks,
		RoomVisits:    *visits,
		NightFraction: *night,
		Seed:          *seed,
		FPS:           3.5,
	}
	fmt.Printf("generating dataset: %s, %d walks + %d visits by %d users...\n",
		b.Name, spec.CorridorWalks, spec.RoomVisits, spec.Users)
	t0 := time.Now()
	ds, err := crowdmap.GenerateDataset(b, spec)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("  %d captures, %d frames (%s)\n", len(ds.Captures), ds.FrameCount(), time.Since(t0).Round(time.Millisecond))

	cfg := crowdmap.DefaultConfig()
	cfg.Layout.Hypotheses = *hypotheses
	cfg.Workers = *workers
	fmt.Println("reconstructing...")
	t1 := time.Now()
	res, err := crowdmap.Reconstruct(ds.Captures, cfg)
	if err != nil {
		log.Fatalf("reconstruct: %v", err)
	}
	fmt.Printf("  placed %d/%d tracks, %d rooms, %d room failures (%s)\n",
		len(res.Aggregation.Offsets), len(res.Tracks),
		len(res.Plan.Rooms), len(res.RoomFailures), time.Since(t1).Round(time.Millisecond))
	for id, ferr := range res.RoomFailures {
		fmt.Printf("  room failure %s: %v\n", id, ferr)
	}

	rep, err := crowdmap.Evaluate(res, b)
	if err != nil {
		log.Fatalf("evaluate: %v", err)
	}
	fmt.Printf("\nevaluation: %s\n", rep)

	if *ascii {
		art, err := res.Plan.RenderASCII(0.8)
		if err != nil {
			log.Fatalf("render ascii: %v", err)
		}
		fmt.Println("\nreconstructed plan:")
		fmt.Println(art)
	}
	if *svgPath != "" {
		svg, err := res.Plan.RenderSVG()
		if err != nil {
			log.Fatalf("render svg: %v", err)
		}
		if err := os.WriteFile(*svgPath, svg, 0o644); err != nil {
			log.Fatalf("write svg: %v", err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
}
