package crowdmap

import (
	"context"
	"testing"

	"crowdmap/internal/aggregate"
	"crowdmap/internal/floorplan"
	"crowdmap/internal/geom"
	"crowdmap/internal/layout"
	"crowdmap/internal/trajectory"
)

func TestDedupRooms(t *testing.T) {
	mk := func(id string, x, y, score float64) floorplan.RoomObservation {
		return floorplan.RoomObservation{
			ID:        id,
			CameraPos: geom.P(x, y),
			RoomLayout: layout.Layout{
				DXMinus: 2, DXPlus: 2, DYMinus: 2, DYPlus: 2, Score: score,
			},
		}
	}
	obs := []floorplan.RoomObservation{
		mk("a1", 0, 0, 0.8),
		mk("a2", 0.5, 0, 0.9), // same room, better score
		mk("b", 10, 0, 0.7),   // distinct room
	}
	out := dedupRooms(obs, 2.0)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d observations, want 2", len(out))
	}
	// The better-scoring observation of the cluster survives.
	found := false
	for _, o := range out {
		if o.ID == "a2" {
			found = true
		}
		if o.ID == "a1" {
			t.Error("weaker duplicate survived")
		}
	}
	if !found {
		t.Error("best cluster member missing")
	}
	// Radius 0 disables deduplication.
	if got := dedupRooms(obs, 0); len(got) != 3 {
		t.Errorf("radius 0 should keep all, got %d", len(got))
	}
	// Single observation passes through.
	if got := dedupRooms(obs[:1], 2); len(got) != 1 {
		t.Errorf("single obs dedup = %d", len(got))
	}
}

func TestSRSKeyFrames(t *testing.T) {
	traj := &trajectory.Trajectory{Points: []trajectory.Point{
		{T: 0, Pos: geom.P(5, 5)},
		{T: 10, Pos: geom.P(15, 5)},
	}}
	kfs := []*KeyFrame{
		{T: 1, LocalPos: geom.P(5.1, 5)},   // stationary
		{T: 2, LocalPos: geom.P(5.4, 5.3)}, // stationary
		{T: 8, LocalPos: geom.P(12, 5)},    // walking
	}
	got := srsKeyFrames(kfs, traj, 0.75)
	if len(got) != 2 {
		t.Fatalf("srsKeyFrames kept %d, want 2", len(got))
	}
	if got := srsKeyFrames(kfs, &trajectory.Trajectory{}, 0.75); got != nil {
		t.Error("empty trajectory should produce no SRS frames")
	}
}

func TestParallelAggregateMatchesSequential(t *testing.T) {
	// Stub tracks exercised through the memoized parallel path must agree
	// with the sequential Aggregate on the same comparer outcome. We use
	// trivial empty tracks: no key-frames means no anchors and no matches,
	// and the result structure must still be coherent.
	tracks := []*Track{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	res, err := ParallelAggregate(context.Background(), tracks, aggregate.DefaultParams(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("empty tracks produced %d matches", len(res.Matches))
	}
	if len(res.Components) != 3 {
		t.Errorf("expected 3 singleton components, got %d", len(res.Components))
	}
	// Largest component is a singleton; its offset must exist.
	if len(res.Offsets) != 1 {
		t.Errorf("offsets = %v", res.Offsets)
	}
}

func TestEvaluateNilResult(t *testing.T) {
	b, err := BuildingByName("Lab2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(nil, b); err == nil {
		t.Error("nil result should error")
	}
	if _, err := Evaluate(&Result{}, b); err == nil {
		t.Error("result without plan should error")
	}
}

func TestReportString(t *testing.T) {
	var rep Report
	s := rep.String()
	if s == "" {
		t.Error("report string empty")
	}
}
