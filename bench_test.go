// Benchmarks: one per table/figure of the paper's evaluation plus the
// ablations called out in DESIGN.md and the computational kernels that
// dominate the pipeline. Figure-level benchmarks run reduced workloads of
// the same code paths cmd/experiments exercises at full scale.
package crowdmap

import (
	"context"
	"fmt"
	"math"
	"testing"

	"crowdmap/internal/aggregate"
	"crowdmap/internal/alphashape"
	"crowdmap/internal/baseline"
	"crowdmap/internal/cloud/integrity"
	"crowdmap/internal/crowd"
	"crowdmap/internal/eval"
	"crowdmap/internal/floorplan"
	"crowdmap/internal/forcedir"
	"crowdmap/internal/geom"
	"crowdmap/internal/img"
	"crowdmap/internal/keyframe"
	"crowdmap/internal/layout"
	"crowdmap/internal/mathx"
	"crowdmap/internal/trajectory"
	"crowdmap/internal/vision/hog"
	"crowdmap/internal/vision/pano"
	"crowdmap/internal/vision/surf"
	"crowdmap/internal/world"
)

// ---- shared fixtures (built once, outside timed regions) ----

func benchCaptures(b *testing.B, building *world.Building, walks, visits int, seed int64) []*crowd.Capture {
	b.Helper()
	ds, err := GenerateDataset(building, DatasetSpec{
		Users: 5, CorridorWalks: walks, RoomVisits: visits,
		NightFraction: 0.2, Seed: seed, FPS: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds.Captures
}

func benchTracks(b *testing.B, captures []*crowd.Capture) []*Track {
	b.Helper()
	cfg := DefaultConfig()
	tracks := make([]*Track, len(captures))
	for i, c := range captures {
		kfs, traj, err := keyframe.Extract(c, cfg.Keyframe)
		if err != nil {
			b.Fatal(err)
		}
		tracks[i] = &Track{ID: c.ID, Traj: traj, KFs: kfs, Hash: c.Fingerprint()}
	}
	return tracks
}

// stripSURFIndexes clones tracks with the per-key-frame SURF indexes
// removed, forcing keyframe.Compare onto the brute-force matching path.
func stripSURFIndexes(tracks []*Track) []*Track {
	out := make([]*Track, len(tracks))
	for i, tr := range tracks {
		cp := *tr
		cp.KFs = make([]*keyframe.KeyFrame, len(tr.KFs))
		for j, kf := range tr.KFs {
			k := *kf
			k.SURFIndex = nil
			cp.KFs[j] = &k
		}
		out[i] = &cp
	}
	return out
}

func benchPanorama(b *testing.B, building *world.Building, room world.Room) *pano.Panorama {
	b.Helper()
	cam := world.DefaultCamera()
	r := world.NewRenderer(building, cam)
	pp := pano.DefaultParams()
	pp.FOV = cam.FOV
	pp.Pitch = cam.Pitch
	var frames []pano.Frame
	for d := 0.0; d < 360; d += 20 {
		h := mathx.Deg2Rad(d)
		frames = append(frames, pano.Frame{
			Image:   r.Render(world.Pose{Pos: room.Bounds.Center(), Heading: h}, world.Daylight(), nil),
			Heading: h,
		})
	}
	pn, err := pano.Stitch(frames, pp)
	if err != nil {
		b.Fatal(err)
	}
	return pn
}

// ---- Table I: hallway shape reconstruction ----

// BenchmarkTableIHallwayShape measures the hallway-shape half of Table I:
// skeleton construction plus precision/recall scoring over pre-aggregated
// trajectories (the vision-heavy stages are benchmarked separately).
func BenchmarkTableIHallwayShape(b *testing.B) {
	building := world.Lab2()
	captures := benchCaptures(b, building, 8, 0, 11)
	tracks := benchTracks(b, captures)
	// Place tracks at their truth offsets (aggregation is benchmarked in
	// BenchmarkFig7aAggregation); here we time skeleton + metric.
	var trajs []*trajectory.Trajectory
	for _, tr := range tracks {
		var off geom.Pt
		for _, kf := range tr.KFs {
			off = off.Add(kf.TruthPose.Pos.Sub(kf.LocalPos))
		}
		off = off.Scale(1 / float64(len(tr.KFs)))
		trajs = append(trajs, tr.Traj.Translate(off))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask, shape, err := floorplan.BuildSkeleton(trajs, floorplan.DefaultSkeletonParams())
		if err != nil {
			b.Fatal(err)
		}
		plan := &floorplan.Plan{Building: building.Name, HallwayMask: mask, HallwayShape: shape}
		if _, _, err := eval.HallwayShapeScore(plan, building, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 6: plan assembly and rendering ----

func BenchmarkFig6PlanRender(b *testing.B) {
	building := world.Lab2()
	captures := benchCaptures(b, building, 6, 0, 13)
	tracks := benchTracks(b, captures)
	var trajs []*trajectory.Trajectory
	for _, tr := range tracks {
		trajs = append(trajs, tr.Traj)
	}
	mask, shape, err := floorplan.BuildSkeleton(trajs, floorplan.DefaultSkeletonParams())
	if err != nil {
		b.Fatal(err)
	}
	plan := &floorplan.Plan{Building: building.Name, HallwayMask: mask, HallwayShape: shape,
		Rooms: []floorplan.Room{{ID: "A", Center: geom.P(5, 3), Width: 5, Length: 4}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.RenderASCII(0.8); err != nil {
			b.Fatal(err)
		}
		if _, err := plan.RenderSVG(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 7a: trajectory aggregation, sequence vs single image ----

func BenchmarkFig7aAggregation(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 6, 0, 17)
	tracks := benchTracks(b, captures)
	p := aggregate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.Aggregate(tracks, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aSingleImageAggregation(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 6, 0, 17)
	tracks := benchTracks(b, captures)
	p := aggregate.DefaultParams()
	cmp := baseline.SingleImageComparer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.Aggregate(tracks, p, cmp); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 7b: lighting tolerance (night-frame matching) ----

func BenchmarkFig7bLighting(b *testing.B) {
	// One day and one night capture over the same stretch: measure the
	// cross-lighting pair comparison that Fig. 7b sweeps.
	building := world.Lab2()
	gen, err := crowd.NewGenerator(building)
	if err != nil {
		b.Fatal(err)
	}
	users, err := crowd.NewPopulation(2, 0.5, mathx.NewRNG(19))
	if err != nil {
		b.Fatal(err)
	}
	users[0].Night = false
	users[1].Night = true
	cfg := DefaultConfig()
	var tracks []*Track
	for i, u := range users {
		c, err := gen.SWS(fmt.Sprintf("lit-%d", i), u, geom.P(4, 7.5), geom.P(24, 7.5), mathx.NewRNG(23+int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		kfs, traj, err := keyframe.Extract(c, cfg.Keyframe)
		if err != nil {
			b.Fatal(err)
		}
		tracks = append(tracks, &Track{ID: c.ID, Traj: traj, KFs: kfs})
	}
	p := aggregate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := aggregate.ComparePair(0, 1, tracks[0], tracks[1], p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 7c: key-frame match latency (the paper's 0.8 s/SURF match) ----

func BenchmarkFig7cMatchLatency(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 2, 0, 29)
	tracks := benchTracks(b, captures)
	ka := tracks[0].KFs[len(tracks[0].KFs)/2]
	kb := tracks[1].KFs[len(tracks[1].KFs)/2]
	p := keyframe.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := keyframe.Compare(ka, kb, p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 8a/8b: room area and aspect errors ----

func BenchmarkFig8aRoomArea(b *testing.B) {
	building := world.Lab1()
	room := building.Rooms[2]
	pn := benchPanorama(b, building, room)
	lp := layout.DefaultParams()
	lp.CameraHeight = building.CameraHeight
	lp.Hypotheses = 20000 // the paper's hypothesis count
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := layout.Estimate(pn, lp, mathx.NewRNG(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		_ = math.Abs(l.Area()-room.Area()) / room.Area()
	}
}

func BenchmarkFig8bAspectRatioInertialBaseline(b *testing.B) {
	building := world.Lab2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.MeasureRoomsInertial(building, baseline.DefaultInertialRoomParams(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 8c: force-directed room placement ----

func BenchmarkFig8cRoomLocation(b *testing.B) {
	building := world.Lab2()
	var obs []floorplan.RoomObservation
	for i, room := range building.Rooms {
		obs = append(obs, floorplan.RoomObservation{
			ID:        room.ID,
			CameraPos: room.Bounds.Center().Add(geom.P(0.3*float64(i%3), -0.2)),
			RoomLayout: layout.Layout{
				DXMinus: room.Bounds.W() / 2, DXPlus: room.Bounds.W() / 2,
				DYMinus: room.Bounds.H() / 2, DYPlus: room.Bounds.H() / 2,
			},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rooms, err := floorplan.PlaceRooms(obs, nil, forcedir.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eval.ScoreRooms(rooms, building, geom.Pt{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig. 9: SfM chain vs hybrid tracking ----

func BenchmarkFig9SfM(b *testing.B) {
	building := world.Lab1()
	cam := world.DefaultCamera()
	r := world.NewRenderer(building, cam)
	var feats [][]surf.Feature
	var steps []float64
	for i := 0; i < 6; i++ {
		p := geom.P(5+0.45*float64(i), 7.2)
		frame := r.Render(world.Pose{Pos: p, Heading: 0}, world.Daylight(), nil)
		feats = append(feats, surf.Extract(frame.Luma(), surf.DefaultParams()))
		if i > 0 {
			steps = append(steps, 0.45)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.ChainSfM(feats, steps, cam, 0.12); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md Section 5) ----

// BenchmarkAblationLCSWindow sweeps the δ sequence window.
func BenchmarkAblationLCSWindow(b *testing.B) {
	rng := mathx.NewRNG(31)
	mk := func() []geom.Pt {
		pts := make([]geom.Pt, 120)
		p := geom.Pt{}
		for i := range pts {
			p = p.Add(geom.P(rng.Float64(), rng.Float64()-0.5))
			pts[i] = p
		}
		return pts
	}
	pa, pb := mk(), mk()
	for _, delta := range []int{10, 25, 50, 100} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aggregate.LCS(pa, pb, 1.5, delta)
			}
		})
	}
}

// BenchmarkAblationStage1Gate compares the hierarchical comparison with
// and without the cheap stage-1 filter (the paper's scaling argument).
func BenchmarkAblationStage1Gate(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 2, 0, 37)
	tracks := benchTracks(b, captures)
	ka := tracks[0].KFs[0]
	kb := tracks[1].KFs[len(tracks[1].KFs)-1] // far apart: stage 1 should reject
	gated := keyframe.DefaultParams()
	ungated := gated
	ungated.HS = 0 // stage 1 always passes; SURF always runs
	b.Run("gated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := keyframe.Compare(ka, kb, gated); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ungated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := keyframe.Compare(ka, kb, ungated); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKeyframeGate sweeps the HOG key-frame threshold h_g:
// higher thresholds keep more key-frames and cost more downstream.
func BenchmarkAblationKeyframeGate(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 1, 0, 41)
	c := captures[0]
	for _, hg := range []float64{0.80, 0.92, 0.98} {
		b.Run(fmt.Sprintf("hg=%.2f", hg), func(b *testing.B) {
			p := keyframe.DefaultParams()
			p.HG = hg
			var kept int
			for i := 0; i < b.N; i++ {
				kfs, _, err := keyframe.Extract(c, p)
				if err != nil {
					b.Fatal(err)
				}
				kept = len(kfs)
			}
			b.ReportMetric(float64(kept), "keyframes")
		})
	}
}

// BenchmarkAblationGridResolution sweeps the occupancy grid cell size.
func BenchmarkAblationGridResolution(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 6, 0, 43)
	tracks := benchTracks(b, captures)
	var trajs []*trajectory.Trajectory
	for _, tr := range tracks {
		trajs = append(trajs, tr.Traj)
	}
	for _, res := range []float64{0.4, 0.8, 1.6} {
		b.Run(fmt.Sprintf("res=%.1f", res), func(b *testing.B) {
			p := floorplan.DefaultSkeletonParams()
			p.GridRes = res
			p.Alpha = 2.2 * res
			for i := 0; i < b.N; i++ {
				if _, _, err := floorplan.BuildSkeleton(trajs, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHypothesisCount sweeps the layout sampling budget
// around the paper's 20,000.
func BenchmarkAblationHypothesisCount(b *testing.B) {
	building := world.Lab1()
	room := building.Rooms[2]
	pn := benchPanorama(b, building, room)
	for _, n := range []int{1000, 5000, 20000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			lp := layout.DefaultParams()
			lp.CameraHeight = building.CameraHeight
			lp.Hypotheses = n
			var lastErr float64
			for i := 0; i < b.N; i++ {
				l, err := layout.Estimate(pn, lp, mathx.NewRNG(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				lastErr = math.Abs(l.Area()-room.Area()) / room.Area()
			}
			b.ReportMetric(lastErr*100, "areaErr%")
		})
	}
}

// ---- anchor-search fast path (PR 2) ----

// anchorBenchTracks builds the two-track Lab1 fixture both anchor-search
// benchmarks share, so brute and indexed time the same workload.
func anchorBenchTracks(b *testing.B) (*Track, *Track) {
	b.Helper()
	captures := benchCaptures(b, world.Lab1(), 4, 2, 59)
	tracks := benchTracks(b, captures)
	return tracks[0], tracks[1]
}

// anchorBenchParams disables the cheap stage-1 gate so the benchmark times
// the stage the index accelerates: the SURF descriptor scan that runs for
// every key-frame pair the gate admits (the paper's 0.8 s bottleneck). The
// S2 pass/fail set is identical on both paths — surf/index_test.go pins
// match-for-match equality — so brute vs indexed is a pure speed contest
// over the same decisions.
func anchorBenchParams() aggregate.Params {
	p := aggregate.DefaultParams()
	p.KF.HS = 0
	return p
}

// BenchmarkAnchorSearchBrute times FindAnchors with the O(|F1|·|F2|)
// brute-force SURF scan (indexes stripped) — the pre-PR-2 hot path.
func BenchmarkAnchorSearchBrute(b *testing.B) {
	ta, tb := anchorBenchTracks(b)
	stripped := stripSURFIndexes([]*Track{ta, tb})
	p := anchorBenchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.FindAnchors(stripped[0], stripped[1], p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnchorSearchIndexed times the same anchor search through the
// grid-bucketed descriptor index. Decisions are identical to the brute
// path (see surf/index_test.go); only the work changes.
func BenchmarkAnchorSearchIndexed(b *testing.B) {
	ta, tb := anchorBenchTracks(b)
	p := anchorBenchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.FindAnchors(ta, tb, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmCacheAggregation times a full aggregation replay against a
// prewarmed pair cache — the steady state of crowdmapd re-running after an
// upload adds nothing new — and reports the measured cache hit rate.
func BenchmarkWarmCacheAggregation(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 6, 0, 17)
	tracks := benchTracks(b, captures)
	p := aggregate.DefaultParams()
	cache := aggregate.NewPairCache(0)
	ctx := context.Background()
	if _, err := ParallelAggregate(ctx, tracks, p, 0, cache); err != nil {
		b.Fatal(err)
	}
	reg := NewMetricsRegistry()
	p.KF.Obs = reg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelAggregate(ctx, tracks, p, 0, cache); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c := reg.Snapshot().Counters
	total := c["compare.cache.hits"] + c["compare.cache.misses"] + c["compare.cache.bypass"]
	if total > 0 {
		b.ReportMetric(float64(c["compare.cache.hits"])/float64(total)*100, "hit%")
	}
}

// ---- stage-1 scoring (PR 6) ----

// stage1BenchLists extracts the two key-frame lists both stage-1 scoring
// benchmarks share, so the per-pair and batched paths time the same
// workload: every cross pair of the two anchor-search tracks.
func stage1BenchLists(b *testing.B) (as, bs []*keyframe.KeyFrame, p keyframe.Params) {
	ta, tb := anchorBenchTracks(b)
	return ta.KFs, tb.KFs, keyframe.DefaultParams()
}

// BenchmarkStage1PairScoring times the pre-PR-6 shape of the cheap gate:
// one keyframe.Stage1 call per pair, walking the wavelet coefficient maps
// each time.
func BenchmarkStage1PairScoring(b *testing.B) {
	as, bs, p := stage1BenchLists(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ka := range as {
			for _, kb := range bs {
				if _, err := keyframe.Stage1(ka, kb, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkStage1BlockScoring times the batched scorer over the same
// pairs: channel-major passes over flattened signatures into a reused
// score buffer. Scores are bit-identical to the per-pair path
// (keyframe/stage1_test.go pins that).
func BenchmarkStage1BlockScoring(b *testing.B) {
	as, bs, p := stage1BenchLists(b)
	var buf []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := keyframe.Stage1Block(as, bs, p, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

// ---- incremental delta reconstruction (PR 7) ----

// deltaBenchFixture builds the delta-vs-full workload: a base corpus the
// daemon has already reconstructed, plus one fresh never-seen capture —
// the steady-state "one more upload arrives" event both benchmarks time.
func deltaBenchFixture(b *testing.B) (base []*Capture, corpus []*Capture, cfg Config) {
	b.Helper()
	ds, err := GenerateDataset(world.Lab2(), DatasetSpec{
		Users: 5, CorridorWalks: 9, RoomVisits: 3, Seed: 61, FPS: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	captures := ds.Captures
	base = captures[:len(captures)-1]
	corpus = captures
	cfg = DefaultConfig()
	cfg.Layout.Hypotheses = 400
	cfg.Seed = 7
	return base, corpus, cfg
}

// BenchmarkFullRebuild times what every upload used to cost: a cold
// end-to-end reconstruction of the whole corpus including the new
// capture.
func BenchmarkFullRebuild(b *testing.B) {
	_, corpus, cfg := deltaBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrajectoryOnlyReconstruct times the CrowdInside-style
// workload: a frame-less IMU-only corpus dead-reckoned, turn-matched, and
// rasterized through the occupancy/α-shape stages. No vision work at all,
// so this bounds the cost floor of a trajectory-mode deployment.
func BenchmarkTrajectoryOnlyReconstruct(b *testing.B) {
	ds, err := GenerateDataset(world.Lab2(), DatasetSpec{
		Users: 5, CorridorWalks: 9, RoomVisits: 3, Seed: 61, FPS: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := make([]*Capture, len(ds.Captures))
	for i, src := range ds.Captures {
		c := *src
		c.Frames = nil
		c.FPS = 0
		corpus[i] = &c
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Mode = ModeTrajectory
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaUpdate times the same corpus change through
// ReconstructDelta with a state warmed on the base corpus: only the new
// capture's extraction, its pair comparisons, a grid patch, and the cheap
// shared tail run. Each iteration clones the warm state (outside the
// timed region), so the new capture is genuinely never-seen every time —
// no iteration rides a previous iteration's memo.
func BenchmarkDeltaUpdate(b *testing.B) {
	base, corpus, cfg := deltaBenchFixture(b)
	ctx := context.Background()
	warm := NewDeltaState()
	if _, err := ReconstructDelta(ctx, base, cfg, warm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := warm.Clone()
		b.StartTimer()
		if _, err := ReconstructDelta(ctx, corpus, cfg, st); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- computational kernels ----

func BenchmarkKernelRenderFrame(b *testing.B) {
	building := world.Lab1()
	r := world.NewRenderer(building, world.DefaultCamera())
	pose := world.Pose{Pos: geom.P(20, 7.2), Heading: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render(pose, world.Daylight(), nil)
	}
}

func BenchmarkKernelSURFExtract(b *testing.B) {
	building := world.Lab1()
	r := world.NewRenderer(building, world.DefaultCamera())
	luma := r.Render(world.Pose{Pos: geom.P(20, 7.2), Heading: 0}, world.Daylight(), nil).Luma()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		surf.Extract(luma, surf.DefaultParams())
	}
}

func BenchmarkKernelSURFMatch(b *testing.B) {
	building := world.Lab1()
	r := world.NewRenderer(building, world.DefaultCamera())
	fa := surf.Extract(r.Render(world.Pose{Pos: geom.P(20, 7.2), Heading: 0}, world.Daylight(), nil).Luma(), surf.DefaultParams())
	fb := surf.Extract(r.Render(world.Pose{Pos: geom.P(20.3, 7.2), Heading: 0.05}, world.Daylight(), nil).Luma(), surf.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		surf.Match(fa, fb, 0.12)
	}
}

func BenchmarkKernelHOG(b *testing.B) {
	building := world.Lab1()
	r := world.NewRenderer(building, world.DefaultCamera())
	luma := r.Render(world.Pose{Pos: geom.P(20, 7.2), Heading: 0}, world.Daylight(), nil).Luma()
	p := hog.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hog.Compute(luma, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelPanoramaStitch(b *testing.B) {
	building := world.Lab1()
	cam := world.DefaultCamera()
	r := world.NewRenderer(building, cam)
	pp := pano.DefaultParams()
	pp.FOV = cam.FOV
	pp.Pitch = cam.Pitch
	room := building.Rooms[0]
	var frames []pano.Frame
	for d := 0.0; d < 360; d += 20 {
		h := mathx.Deg2Rad(d)
		frames = append(frames, pano.Frame{
			Image:   r.Render(world.Pose{Pos: room.Bounds.Center(), Heading: h}, world.Daylight(), nil),
			Heading: h,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pano.Stitch(frames, pp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelDelaunay(b *testing.B) {
	rng := mathx.NewRNG(47)
	pts := make([]geom.Pt, 400)
	for i := range pts {
		pts[i] = geom.P(rng.Float64()*40, rng.Float64()*30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alphashape.Delaunay(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelDeadReckon(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 1, 0, 53)
	imu := captures[0].IMU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trajectory.DeadReckon(imu, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelIntegralImage times the pooled summed-area-table rebuild
// (img.NewIntegralInto) that SURF extraction and HOG both sit on; with a
// reused table it must run allocation-free.
func BenchmarkKernelIntegralImage(b *testing.B) {
	building := world.Lab1()
	r := world.NewRenderer(building, world.DefaultCamera())
	luma := r.Render(world.Pose{Pos: geom.P(20, 7.2), Heading: 0}, world.Daylight(), nil).Luma()
	it := img.NewIntegral(luma)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.NewIntegralInto(it, luma)
	}
}

// ---- integrity-verified persistence (PR 10) ----

// BenchmarkVerifiedTrackDecode times the read path a delta run pays for
// every reused persisted track: integrity-envelope verification (one
// SHA-256 pass over the artifact) followed by DecodeTrack (gunzip, gob,
// derived-structure rebuild). The ratchet pins the envelope's overhead
// staying marginal next to the decode it protects.
func BenchmarkVerifiedTrackDecode(b *testing.B) {
	captures := benchCaptures(b, world.Lab2(), 1, 0, 19)
	c := captures[0]
	kfs, traj, err := extractTrack(c, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	track := &aggregate.Track{ID: c.ID, Traj: traj, KFs: kfs, Night: c.Night, Hash: "bench"}
	data, err := aggregate.EncodeTrack(track)
	if err != nil {
		b.Fatal(err)
	}
	wrapped := integrity.Wrap(data)
	b.SetBytes(int64(len(wrapped)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := integrity.Unwrap(wrapped)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := aggregate.DecodeTrack(payload); err != nil {
			b.Fatal(err)
		}
	}
}
