package crowdmap

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"crowdmap/internal/img"
	"crowdmap/internal/quality"
)

// degradedCorpus builds a compact clean Lab2 corpus for the degraded-mode
// pinning tests. Generation is fully seeded.
func degradedCorpus(t *testing.T) ([]*Capture, Config) {
	t.Helper()
	b, err := BuildingByName("Lab2")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(b, DatasetSpec{
		Users:         3,
		CorridorWalks: 6,
		RoomVisits:    3,
		NightFraction: 0,
		Seed:          2025,
		FPS:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Layout.Hypotheses = 500
	cfg.Seed = 7
	return ds.Captures, cfg
}

// nanCapture clones a clean capture into one whose IMU stream is corrupt
// beyond the sanitization budget, which the quality gate must reject.
func nanCapture(src *Capture) *Capture {
	c := *src
	c.ID = "poison-nan-imu"
	c.IMU = append(c.IMU[:0:0], c.IMU...)
	for i := range c.IMU {
		if i%2 == 0 {
			c.IMU[i].GyroZ = math.NaN()
			c.IMU[i].Accel[1] = math.Inf(1)
		}
	}
	return &c
}

// panicCapture clones a clean capture into one whose frames lie about
// their dimensions: every pixel loop over W×H indexes past the channel
// slices and panics. The quality gate cannot see this (it does not read
// pixels); the keyframe stage's panic isolation must catch it.
func panicCapture(src *Capture) *Capture {
	c := *src
	c.ID = "poison-panic-frames"
	frames := append(c.Frames[:0:0], c.Frames...)
	for i := range frames {
		frames[i].Image = &img.RGB{
			W: 64, H: 48,
			R: make([]float64, 4), G: make([]float64, 4), B: make([]float64, 4),
		}
	}
	c.Frames = frames
	return &c
}

// TestDegradedModeGolden is the acceptance pin for failure isolation: a
// corpus seeded with poisoned captures (irrecoverable NaN IMU, panic-
// inducing frames) must reconstruct the surviving captures to the exact
// same floor plan as a clean-corpus run, with the exclusions reported on
// the result, the quality.rejected and pipeline.panic.recovered metrics
// incremented, and no goroutines leaked — the process never crashes.
func TestDegradedModeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end degraded-mode check is expensive")
	}
	clean, cfg := degradedCorpus(t)

	cleanRes, err := Reconstruct(clean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cleanRes.Coverage.Degraded || len(cleanRes.Excluded) != 0 {
		t.Fatalf("clean corpus reported degraded coverage: %+v", cleanRes.Coverage)
	}
	if cleanRes.Coverage.Input != len(clean) || cleanRes.Coverage.Used != len(clean) {
		t.Fatalf("clean coverage = %+v, want all %d used", cleanRes.Coverage, len(clean))
	}

	// Poison the corpus at both ends so exclusion-compaction, not index
	// luck, is what keeps the survivors aligned.
	poisoned := append([]*Capture{nanCapture(clean[0])}, clean...)
	poisoned = append(poisoned, panicCapture(clean[1]))

	reg := NewMetricsRegistry()
	pcfg := cfg
	pcfg.Metrics = reg

	before := runtime.NumGoroutine()
	degraded, err := Reconstruct(poisoned, pcfg)
	if err != nil {
		t.Fatalf("degraded run failed instead of completing on survivors: %v", err)
	}

	// The surviving subset must produce the clean corpus's exact plan.
	checkSameResult(t, "degraded vs clean", degraded, cleanRes)

	// Exclusions: both poison captures, each at the right stage.
	if len(degraded.Excluded) != 2 {
		t.Fatalf("excluded = %+v, want the 2 poisoned captures", degraded.Excluded)
	}
	byID := map[string]Exclusion{}
	for _, ex := range degraded.Excluded {
		byID[ex.CaptureID] = ex
	}
	nan, ok := byID["poison-nan-imu"]
	if !ok || nan.Stage != StageQualityGate {
		t.Fatalf("NaN capture exclusion = %+v, want stage %q", nan, StageQualityGate)
	}
	if !containsReason(nan.Reasons, quality.ReasonIMUCorrupt) {
		t.Errorf("NaN exclusion reasons %v missing %s", nan.Reasons, quality.ReasonIMUCorrupt)
	}
	pan, ok := byID["poison-panic-frames"]
	if !ok || pan.Stage != StageKeyframes {
		t.Fatalf("panic capture exclusion = %+v, want stage %q", pan, StageKeyframes)
	}
	if len(pan.Reasons) != 1 || !strings.Contains(pan.Reasons[0], "panic") {
		t.Errorf("panic exclusion reasons %v do not mention the panic", pan.Reasons)
	}

	// Coverage reflects the degraded run.
	want := Coverage{Input: len(poisoned), Used: len(clean), Excluded: 2, Degraded: true, Vision: len(clean)}
	if degraded.Coverage != want {
		t.Errorf("coverage = %+v, want %+v", degraded.Coverage, want)
	}

	// Tracks stay input-indexed with nil holes at the exclusions.
	if len(degraded.Tracks) != len(poisoned) {
		t.Fatalf("tracks len = %d, want %d", len(degraded.Tracks), len(poisoned))
	}
	if degraded.Tracks[0] != nil || degraded.Tracks[len(poisoned)-1] != nil {
		t.Error("excluded captures should leave nil track holes")
	}
	for i := 1; i < len(poisoned)-1; i++ {
		if degraded.Tracks[i] == nil {
			t.Errorf("surviving capture %d has no track", i)
		}
	}

	// Metrics prove the gate and the panic isolation both fired.
	if got := reg.Counter("quality.rejected").Value(); got != 1 {
		t.Errorf("quality.rejected = %d, want 1", got)
	}
	if got := reg.Counter("pipeline.panic.recovered").Value(); got != 1 {
		t.Errorf("pipeline.panic.recovered = %d, want 1", got)
	}
	if got := reg.Counter("reconstruct.excluded").Value(); got != 2 {
		t.Errorf("reconstruct.excluded = %d, want 2", got)
	}

	// No goroutines may leak past the degraded run.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines grew from %d to %d after degraded run", before, now)
	}
}

// TestQualityGateDisabled pins the opt-out: with Config.Quality nil the
// pipeline trusts its input exactly as before, so an irrecoverable
// capture surfaces as a keyframe-stage exclusion (or reconstructs) rather
// than a gate rejection.
func TestQualityGateDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run is expensive")
	}
	clean, cfg := degradedCorpus(t)
	cfg.Quality = nil
	poisoned := append([]*Capture{}, clean...)
	poisoned = append(poisoned, panicCapture(clean[0]))
	res, err := Reconstruct(poisoned, cfg)
	if err != nil {
		t.Fatalf("ungated degraded run failed: %v", err)
	}
	for _, ex := range res.Excluded {
		if ex.Stage == StageQualityGate {
			t.Fatalf("gate disabled but exclusion %+v names the quality stage", ex)
		}
	}
	if len(res.Excluded) != 1 {
		t.Fatalf("excluded = %+v, want just the panic capture", res.Excluded)
	}
}

// TestReconstructAllExcluded pins the zero-survivor contract: the run
// must fail with a descriptive error, not produce an empty plan.
func TestReconstructAllExcluded(t *testing.T) {
	clean, cfg := degradedCorpus(t)
	bad := make([]*Capture, 3)
	for i := range bad {
		c := nanCapture(clean[i])
		c.ID = fmt.Sprintf("poison-%d", i)
		bad[i] = c
	}
	_, err := Reconstruct(bad, cfg)
	if err == nil || !strings.Contains(err.Error(), "quality gate excluded all") {
		t.Fatalf("all-excluded corpus returned %v, want gate-exclusion error", err)
	}
}

func containsReason(reasons []string, code string) bool {
	for _, r := range reasons {
		if r == code {
			return true
		}
	}
	return false
}
