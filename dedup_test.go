package crowdmap

import (
	"math/rand"
	"testing"

	"crowdmap/internal/floorplan"
	"crowdmap/internal/geom"
)

// chainObs places three observations in a line: A and C are each within
// radius of B but more than radius apart from each other — the A–B–C
// chain whose clustering used to depend on input order.
func chainObs() (a, b, c floorplan.RoomObservation) {
	// Zero layouts put the room center at the camera position, so the
	// pairwise center distances are exactly the camera distances.
	a = floorplan.RoomObservation{ID: "A", CameraPos: geom.P(0, 0)}
	a.RoomLayout.Score = 0.5
	b = floorplan.RoomObservation{ID: "B", CameraPos: geom.P(1.5, 0)}
	b.RoomLayout.Score = 0.9 // best of the chain
	c = floorplan.RoomObservation{ID: "C", CameraPos: geom.P(3, 0)}
	c.RoomLayout.Score = 0.7
	return a, b, c
}

// TestDedupRoomsChainIsOrderIndependent is the regression test for the
// seed-membership bug: with radius 2, A–B and B–C are linked but A–C is
// not. Seeding the cluster at A used to split the chain into {A,B} and
// {C}; seeding at B merged all three. Connected-component clustering
// must merge the chain into one room — the best-scoring B — for every
// input order.
func TestDedupRoomsChainIsOrderIndependent(t *testing.T) {
	a, b, c := chainObs()
	const radius = 2.0
	perms := [][]floorplan.RoomObservation{
		{a, b, c}, {a, c, b}, {b, a, c}, {b, c, a}, {c, a, b}, {c, b, a},
	}
	for _, perm := range perms {
		got := dedupRooms(perm, radius)
		if len(got) != 1 {
			ids := []string{perm[0].ID, perm[1].ID, perm[2].ID}
			t.Fatalf("order %v: %d rooms after dedup, want 1 (chain split)", ids, len(got))
		}
		if got[0].ID != "B" {
			t.Errorf("order %v...: kept %s (score %g), want best-scoring B",
				perm[0].ID, got[0].ID, got[0].RoomLayout.Score)
		}
	}
}

// TestDedupRoomsKeepsSeparateClusters: observations farther than radius
// from every other stay distinct, and output order follows the first
// member of each cluster.
func TestDedupRoomsKeepsSeparateClusters(t *testing.T) {
	near1 := floorplan.RoomObservation{ID: "n1", CameraPos: geom.P(0, 0)}
	near1.RoomLayout.Score = 0.4
	near2 := floorplan.RoomObservation{ID: "n2", CameraPos: geom.P(0.5, 0)}
	near2.RoomLayout.Score = 0.8
	far := floorplan.RoomObservation{ID: "far", CameraPos: geom.P(10, 10)}
	far.RoomLayout.Score = 0.1
	got := dedupRooms([]floorplan.RoomObservation{near1, far, near2}, 2)
	if len(got) != 2 {
		t.Fatalf("%d rooms, want 2", len(got))
	}
	if got[0].ID != "n2" || got[1].ID != "far" {
		t.Errorf("got [%s %s], want [n2 far] (best of first cluster, then far)", got[0].ID, got[1].ID)
	}
}

// TestDedupRoomsShuffleInvariance: on a random point set, the deduped
// result (as an ID multiset) is identical for every shuffle of the
// input — the property the seed-based clustering violated.
func TestDedupRoomsShuffleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	obs := make([]floorplan.RoomObservation, 40)
	for i := range obs {
		obs[i] = floorplan.RoomObservation{
			ID:        string(rune('a'+i%26)) + string(rune('0'+i/26)),
			CameraPos: geom.P(rng.Float64()*20, rng.Float64()*20),
		}
		obs[i].RoomLayout.Score = rng.Float64()
	}
	ref := dedupRooms(append([]floorplan.RoomObservation(nil), obs...), 1.5)
	refIDs := make(map[string]bool, len(ref))
	for _, o := range ref {
		refIDs[o.ID] = true
	}
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]floorplan.RoomObservation(nil), obs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := dedupRooms(shuffled, 1.5)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d rooms, want %d", trial, len(got), len(ref))
		}
		for _, o := range got {
			if !refIDs[o.ID] {
				t.Fatalf("trial %d: room %s kept, not in reference set", trial, o.ID)
			}
		}
	}
}
