package crowdmap

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"crowdmap/internal/aggregate"
	"crowdmap/internal/alphashape"
	"crowdmap/internal/cloud/pipeline"
	"crowdmap/internal/crowd"
	"crowdmap/internal/floorplan"
	"crowdmap/internal/geom"
	"crowdmap/internal/gridmap"
	"crowdmap/internal/keyframe"
	"crowdmap/internal/layout"
	"crowdmap/internal/mathx"
	"crowdmap/internal/obs"
	"crowdmap/internal/quality"
	"crowdmap/internal/vision/pano"
	"crowdmap/internal/world"
)

// Result is the output of a full reconstruction run.
type Result struct {
	// Plan is the assembled floor plan.
	Plan *Plan
	// Tracks are the extracted per-capture tracks, indexed like the input
	// captures; nil at indices whose capture was excluded (see Excluded).
	Tracks []*Track
	// Aggregation is the trajectory merge outcome.
	Aggregation *aggregate.Result
	// RoomObservations are the per-panorama room reconstructions before
	// deduplication and placement.
	RoomObservations []floorplan.RoomObservation
	// RoomFailures records captures whose room reconstruction failed and
	// why (unplaced track, inadmissible panorama, layout failure).
	RoomFailures map[string]error
	// Metrics is the pipeline's final metrics snapshot: per-stage timings
	// (stage.*.seconds), key-frame keep/drop counts, hierarchical
	// comparison pass rates (compare.s1/s2), aggregation decisions and
	// placement counts. When Config.Metrics supplied a shared registry the
	// snapshot includes whatever else that registry accumulated.
	Metrics MetricsSnapshot
	// Excluded lists captures the run completed without: quality-gate
	// rejections and per-capture stage failures (including recovered
	// worker panics). A non-empty list means the plan is a degraded-mode
	// result built from the surviving subset.
	Excluded []Exclusion
	// Coverage summarizes how much of the input corpus the plan rests on.
	Coverage Coverage
}

// Exclusion records one capture a reconstruction run completed without.
type Exclusion struct {
	// CaptureID identifies the excluded capture.
	CaptureID string
	// Stage is where the capture fell out: StageQualityGate for gate
	// rejections (in hybrid mode, only after both modality verdicts
	// rejected it — Reasons then carries the union of both), StageKeyframes
	// for vision-route extraction errors and recovered panics, and
	// StageTrajectory for dead-reckoning errors on the trajectory route.
	Stage string
	// Reasons are machine-readable quality codes (gate rejections) or
	// error strings (stage failures).
	Reasons []string
}

// Coverage summarizes a run's input survival, so callers can distinguish
// a full-corpus plan from a degraded one at a glance.
type Coverage struct {
	// Input is the number of captures handed to Reconstruct.
	Input int
	// Used is the number that survived to drive the plan.
	Used int
	// Excluded is len(Result.Excluded).
	Excluded int
	// Degraded is true when any capture was excluded.
	Degraded bool
	// Vision is the number of used captures that ran the full video
	// pipeline (key-frames, anchors, rooms). In ModeVision this equals
	// Used.
	Vision int
	// TrajectoryOnly is the number of used captures that contributed
	// dead-reckoned trajectory density only: every used capture in
	// ModeTrajectory, and hybrid-mode captures whose video failed the
	// quality gate but whose IMU verdict admitted them.
	TrajectoryOnly int
}

// PlacedKeyFrame is one extracted key-frame together with its pose in the
// plan's global frame: the key-frame's dead-reckoned local position shifted
// by its track's aggregation offset, paired with the fused camera heading.
// It is the unit of the appearance-based localization index — a stored
// corpus of placed key-frames lets a single query frame be matched (via the
// same hierarchical comparison the pipeline uses) and answered with a pose
// on the reconstructed plan (see internal/cloud/mapserve).
type PlacedKeyFrame struct {
	// TrackID is the capture the key-frame came from.
	TrackID string
	// KF is the key-frame with all extracted features.
	KF *KeyFrame
	// Pos is the key-frame's camera position in the plan's global frame.
	Pos geom.Pt
	// Heading is the fused camera heading at capture time, radians.
	Heading float64
}

// PlacedKeyFrames exports every key-frame of every track the aggregation
// placed, with global-frame poses. Key-frames of unplaced tracks are
// omitted: without an aggregation offset they have no global pose. The
// result is deterministic — tracks in input (capture) order, key-frames in
// time order — so two identical reconstructions export identical indexes.
// Both the batch and the delta entry points populate the fields this
// reads, so it works on any completed Result.
func (r *Result) PlacedKeyFrames() []PlacedKeyFrame {
	if r == nil || r.Aggregation == nil {
		return nil
	}
	var out []PlacedKeyFrame
	// Aggregation offsets are keyed by index into the compacted surviving
	// track slice; r.Tracks is input-indexed with nils at exclusions, so
	// walk it re-deriving the compact index.
	live := 0
	for _, tr := range r.Tracks {
		if tr == nil {
			continue
		}
		off, placed := r.Aggregation.Offsets[live]
		live++
		if !placed {
			continue
		}
		for _, kf := range tr.KFs {
			out = append(out, PlacedKeyFrame{
				TrackID: tr.ID,
				KF:      kf,
				Pos:     kf.LocalPos.Add(off),
				Heading: kf.Heading,
			})
		}
	}
	return out
}

// CaptureError identifies which capture a per-capture pipeline failure
// came from, so a daemon can quarantine the poison capture (dead-letter
// it) and retry the job over the remaining corpus.
type CaptureError struct {
	CaptureID string
	Err       error
}

func (e *CaptureError) Error() string {
	return fmt.Sprintf("crowdmap: capture %s: %v", e.CaptureID, e.Err)
}

func (e *CaptureError) Unwrap() error { return e.Err }

// Stage names recorded in a checkpoint journal (Config.Checkpoints).
const (
	StageKeyframes = "keyframes"
	StagePairs     = "pairs"
	StageSkeleton  = "skeleton"
	StagePlan      = "plan"
)

// StageQualityGate names the pre-pipeline quality gate in
// Result.Excluded entries. It is not a checkpointed stage: the gate is
// cheap and deterministic, so it simply re-runs on every attempt.
const StageQualityGate = "quality"

// CorpusFingerprint identifies a capture corpus by content: the SHA-256
// over the sorted per-capture content fingerprints. Checkpoints are keyed
// by it, so adding, removing, or altering any capture invalidates them.
func CorpusFingerprint(captures []*Capture) string {
	fps := make([]string, len(captures))
	for i, c := range captures {
		fps[i] = c.ID + ":" + c.Fingerprint()
	}
	sort.Strings(fps)
	h := sha256.New()
	for _, fp := range fps {
		h.Write([]byte(fp))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Reconstruct runs the complete CrowdMap cloud pipeline over a capture
// corpus: key-frame extraction, sequence-based aggregation, hallway
// skeleton reconstruction, per-room panorama + layout estimation, and
// force-directed plan assembly.
func Reconstruct(captures []*Capture, cfg Config) (*Result, error) {
	return ReconstructContext(context.Background(), captures, cfg)
}

// ReconstructContext is Reconstruct under a caller context: cancellation
// (or a deadline, e.g. a retry policy's per-attempt timeout) stops the
// pipeline between and within stages. When Config.JobID and
// Config.Checkpoints are set, each finished stage is recorded in the
// journal keyed by the corpus fingerprint; the pair-comparison stage
// additionally persists its decisions (the exported PairCache), which a
// resumed run reloads so the expensive anchor searches are not repeated.
// Because decisions are identical with or without the cache, a resumed
// run produces a plan byte-identical to an uninterrupted one.
//
// The run is failure-isolated per capture: quality-gate rejections
// (Config.Quality) and per-capture extraction failures — including panics
// recovered inside pipeline workers — exclude that capture and the job
// completes in degraded mode over the surviving subset, with every
// exclusion recorded on Result.Excluded and the survival ratio on
// Result.Coverage. The degraded plan is byte-identical to the plan a
// fresh run over only the surviving captures would produce. The run
// fails outright only for corpus-level problems: invalid configuration,
// zero survivors, context cancellation, or a skeleton/placement failure.
func ReconstructContext(ctx context.Context, captures []*Capture, cfg Config) (*Result, error) {
	return reconstructPipeline(ctx, captures, cfg, nil)
}

// reconstructPipeline is the stage body shared by ReconstructContext
// (ds == nil: every stage computes from scratch) and ReconstructDelta
// (ds != nil: stages consult the delta state's memos first). Every memo is
// keyed by the complete set of inputs its computation reads — capture
// content fingerprint, parameter signatures, track index, placement
// offset — so a memo hit returns exactly what recomputation would, and
// the two paths produce byte-identical results by construction.
func reconstructPipeline(ctx context.Context, captures []*Capture, cfg Config, ds *deltaRun) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(captures) == 0 {
		return nil, fmt.Errorf("crowdmap: no captures")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Checkpointing is active only with a job identity to key records by.
	ckpt := cfg.Checkpoints
	if cfg.JobID == "" {
		ckpt = nil
	}
	if ds != nil {
		ds.ckpt = ckpt
		ds.job = cfg.JobID
	}
	fp := ""
	if ckpt != nil {
		fp = CorpusFingerprint(captures)
	}
	// Metrics: use the caller's registry when provided so stage timings
	// appear on a shared /metrics endpoint; fall back to a private one.
	// Instrumented subsystems receive it via their Params (keyframe,
	// aggregate) or via the context (pipeline.Map).
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	cfg.Keyframe.Obs = reg
	cfg.Aggregate.KF.Obs = reg
	ctx = obs.NewContext(ctx, reg)
	if cfg.StageBudget > 0 {
		ctx = pipeline.WithSoftBudget(ctx, cfg.StageBudget)
	}
	reg.Counter("reconstruct.runs").Inc()
	reg.Counter("reconstruct.captures").Add(int64(len(captures)))
	ds.begin(reg)
	totalDone := obs.Stage(reg, "reconstruct.total")

	res := &Result{RoomFailures: make(map[string]error)}

	// Stage 0: quality gate and modality routing. Irrecoverable captures
	// are excluded here — before any expensive work — and sanitized copies
	// replace captures with recoverable defects. The gate is deterministic,
	// so exclusion order (input order), the surviving corpus, and the
	// per-capture route are all reproducible.
	reg.Counter("reconstruct.mode." + cfg.Mode.String()).Inc()
	live := captures
	scores := make([]float64, len(captures)) // 0 = unscored
	origIdx := make([]int, len(captures))    // live index -> input index
	for i := range origIdx {
		origIdx[i] = i
	}
	// route[i] marks live[i] as trajectory-routed: dead reckoning only, no
	// vision stack. All captures in ModeTrajectory; in ModeHybrid, the
	// captures the full gate rejected but the inertial verdict admitted.
	route := make([]bool, len(captures))
	if cfg.Mode == ModeTrajectory {
		for i := range route {
			route[i] = true
		}
	}
	if cfg.Quality != nil {
		gateDone := obs.Stage(reg, "quality.gate")
		qp := *cfg.Quality
		qp.Obs = reg
		live = make([]*Capture, 0, len(captures))
		scores = scores[:0]
		origIdx = origIdx[:0]
		route = route[:0]
		for i, c := range captures {
			var gated *Capture
			var rep quality.Report
			traj := false
			switch cfg.Mode {
			case ModeTrajectory:
				// Video is never consumed, so video defects must not reject
				// the capture: the inertial verdict alone decides admission.
				gated, rep = quality.GateIMU(c, qp)
				traj = true
			case ModeHybrid:
				gated, rep = quality.Gate(c, qp)
				if !rep.OK {
					// Per-modality rescue: a capture whose video failed the
					// gate still contributes trajectory density when its
					// IMU is sound.
					if g, irep := quality.GateIMU(c, qp); irep.OK {
						gated, rep, traj = g, irep, true
						reg.Counter("reconstruct.mode.rescued").Inc()
					} else {
						rep.Reasons = mergeReasons(rep.Reasons, irep.Reasons)
					}
				}
			default:
				gated, rep = quality.Gate(c, qp)
			}
			if !rep.OK {
				res.Excluded = append(res.Excluded, Exclusion{
					CaptureID: c.ID, Stage: StageQualityGate, Reasons: rep.Reasons,
				})
				continue
			}
			live = append(live, gated)
			scores = append(scores, rep.Score)
			origIdx = append(origIdx, i)
			route = append(route, traj)
		}
		gateDone()
		if len(live) == 0 {
			return nil, fmt.Errorf("crowdmap: quality gate excluded all %d captures", len(captures))
		}
	}

	// Stage 1: per-capture key-frame extraction (embarrassingly parallel).
	// MapAll rather than Map: a poisoned capture — extraction error or a
	// panic recovered in the worker — must cost the job that capture, not
	// the corpus, so every sibling runs to completion regardless.
	extractDone := obs.Stage(reg, "keyframe.extract")
	liveTracks := make([]*Track, len(live))
	release := func(i int) {
		if cfg.ReleaseFrames {
			// live[i] may be a sanitized copy; release the caller's frames
			// too (both alias the same frame slice when not copied).
			live[i].Frames = nil
			captures[origIdx[i]].Frames = nil
		}
	}
	errs, ctxErr := pipeline.MapAll(ctx, len(live), cfg.Workers, func(_ context.Context, i int) error {
		// Fingerprints are computed before ReleaseFrames drops the pixels
		// they cover. A delta run keys its track memo by the (sanitized)
		// capture fingerprint: a hit skips extraction entirely — the gate
		// and extraction are deterministic, so the memoized track is what
		// extraction would produce.
		var capFP string
		if ds != nil {
			// The delta config signature covers cfg.Mode and routing is
			// deterministic in (content, params, mode), so a memo hit
			// returns a track of the shape this run's route would build.
			tr, fp, hit := ds.lookupTrack(live[i], scores[i])
			if hit {
				liveTracks[i] = tr
				release(i)
				return nil
			}
			capFP = fp
		}
		var kfs []*KeyFrame
		var traj *Trajectory
		var err error
		if route[i] {
			traj, err = deadReckonTrack(live[i])
		} else {
			kfs, traj, err = extractTrack(live[i], cfg)
		}
		if err != nil {
			return &CaptureError{CaptureID: live[i].ID, Err: err}
		}
		if capFP == "" {
			capFP = live[i].Fingerprint()
		}
		liveTracks[i] = &aggregate.Track{
			ID:      live[i].ID,
			Traj:    traj,
			KFs:     kfs,
			Night:   live[i].Night,
			Hash:    capFP,
			Quality: scores[i],
		}
		ds.storeTrack(capFP, liveTracks[i])
		release(i)
		return nil
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	// Compact to the surviving subset. Downstream stages see exactly the
	// slice a fresh run over only the survivors would receive, which is
	// what makes the degraded-mode plan byte-identical to that run's.
	tracks := make([]*Track, 0, len(live))
	liveCaps := make([]*Capture, 0, len(live))
	trackRoute := make([]bool, 0, len(live)) // route, compacted like tracks
	res.Tracks = make([]*Track, len(captures))
	for i := range live {
		if errs[i] != nil {
			stage := StageKeyframes
			if route[i] {
				stage = StageTrajectory
			}
			res.Excluded = append(res.Excluded, Exclusion{
				CaptureID: live[i].ID, Stage: stage,
				Reasons: []string{errs[i].Error()},
			})
			continue
		}
		res.Tracks[origIdx[i]] = liveTracks[i]
		tracks = append(tracks, liveTracks[i])
		liveCaps = append(liveCaps, live[i])
		trackRoute = append(trackRoute, route[i])
	}
	if len(tracks) == 0 {
		return nil, fmt.Errorf("crowdmap: no captures survived extraction (%d excluded)", len(res.Excluded))
	}
	captures = liveCaps
	trajUsed := 0
	for _, r := range trackRoute {
		if r {
			trajUsed++
		}
	}
	res.Coverage = Coverage{
		Input:          len(res.Tracks),
		Used:           len(tracks),
		Excluded:       len(res.Excluded),
		Degraded:       len(res.Excluded) > 0,
		Vision:         len(tracks) - trajUsed,
		TrajectoryOnly: trajUsed,
	}
	reg.Counter("reconstruct.mode.routed.vision").Add(int64(len(tracks) - trajUsed))
	reg.Counter("reconstruct.mode.routed.trajectory").Add(int64(trajUsed))
	reg.Counter("reconstruct.excluded").Add(int64(len(res.Excluded)))
	extractDone()
	// Checkpoint writes are best-effort: losing one costs recomputation on
	// the next attempt, never correctness.
	_ = ckpt.Complete(cfg.JobID, StageKeyframes, fp, nil)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: all-pairs aggregation, parallelized like the paper's Spark
	// stage, memoized and then replayed through the sequential graph
	// builder. A resumed run first reloads the previous attempt's pair
	// decisions into the cache, so only pairs the crash interrupted are
	// compared for real.
	if cfg.PairCache != nil {
		if payload, ok := ckpt.Payload(cfg.JobID, StagePairs, fp); ok && len(payload) > 0 {
			if err := cfg.PairCache.ImportJSON(payload); err != nil {
				// A pairs payload the cache rejects under a valid integrity
				// envelope is a write-time bug; drop the record so it is
				// never retried and recompute the comparisons.
				_ = ckpt.Drop(cfg.JobID, StagePairs)
				reg.Counter("pipeline.resume.corrupt").Inc()
			}
		}
	}
	aggDone := obs.Stage(reg, "aggregate")
	var agg *aggregate.Result
	var err error
	if cfg.Mode == ModeTrajectory {
		// Trajectory mode drives the same union-find aggregation with the
		// turn-anchor comparer. Decisions are cheap and never cached — the
		// pair cache stores vision decisions only.
		agg, err = parallelAggregate(ctx, tracks, cfg.Aggregate, cfg.Workers, aggregate.CompareTrajectoryPair)
	} else {
		agg, err = ParallelAggregate(ctx, tracks, cfg.Aggregate, cfg.Workers, cfg.PairCache)
	}
	if err != nil {
		return nil, err
	}
	aggDone()
	if ckpt != nil {
		var payload []byte
		if cfg.PairCache != nil {
			payload, _ = cfg.PairCache.ExportJSON()
		}
		_ = ckpt.Complete(cfg.JobID, StagePairs, fp, payload)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reg.Counter("aggregate.matches").Add(int64(len(agg.Matches)))
	reg.Counter("aggregate.rejected").Add(int64(len(agg.Rejected)))
	reg.Counter("aggregate.tracks.placed").Add(int64(len(agg.Offsets)))
	if cfg.Mode != ModeVision {
		// Fold trajectory-routed tracks the aggregation left outside the
		// largest component into the global frame (shape matching against
		// the placed set, then GPS fallback), so their dead-reckoned walks
		// seed the occupancy grid instead of being dropped.
		placeTrajectoryTracks(agg, tracks, trackRoute, captures, cfg.Aggregate, reg)
	}

	// Stage 3: hallway skeleton from placed trajectories, with per-track
	// drift calibrated against anchor evidence (the paper's "calibrate the
	// drift error residing in the trajectories").
	skelDone := obs.Stage(reg, "skeleton")
	global := agg.DriftCorrected(tracks, cfg.Aggregate.Epsilon)
	var mask *gridmap.Binary
	var shape *alphashape.Shape
	if ds != nil {
		// Incremental: patch the persistent occupancy grid (exact — see
		// gridmap.Tracked), then re-run the cheap threshold/close/α-shape
		// tail over it, which is exactly what BuildSkeleton does.
		mask, shape, err = ds.skeleton(global, cfg.Skeleton, reg)
	} else {
		mask, shape, err = floorplan.BuildSkeleton(global, cfg.Skeleton)
	}
	if err != nil {
		return nil, fmt.Errorf("crowdmap: skeleton: %w", err)
	}
	skelDone()
	_ = ckpt.Complete(cfg.JobID, StageSkeleton, fp, nil)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 4: room reconstruction for placed SRS/Visit captures.
	res.Aggregation = agg
	var mu sync.Mutex
	roomIdx := make([]int, 0, len(captures))
	for i, c := range captures {
		if c.Kind == crowd.KindSRS || c.Kind == crowd.KindVisit {
			if cfg.Mode != ModeVision && len(tracks[i].KFs) == 0 {
				continue // trajectory-routed: no frames to stitch a panorama from
			}
			roomIdx = append(roomIdx, i)
		}
	}
	roomsDone := obs.Stage(reg, "rooms")
	// Workers write into fixed slots so the final observation order is the
	// roomIdx (capture) order regardless of goroutine scheduling —
	// dedupRooms and floorplan.PlaceRooms are order-sensitive, so appending
	// under the mutex made the plan vary run-to-run.
	obsSlots := make([]*floorplan.RoomObservation, len(roomIdx))
	err = pipeline.Map(ctx, len(roomIdx), cfg.Workers, func(_ context.Context, k int) error {
		i := roomIdx[k]
		// The room memo key covers every input reconstructRoom reads:
		// capture content (fingerprint), the layout RNG's track index, the
		// aggregation offset, and the camera intrinsics (which the content
		// fingerprint does not include); the config signature guarding the
		// whole DeltaState covers the parameter fields.
		if ds != nil {
			if ob, rerr, hit := ds.lookupRoom(captures[i], i, tracks[i], agg); hit {
				if rerr != nil {
					mu.Lock()
					res.RoomFailures[captures[i].ID] = rerr
					mu.Unlock()
					return nil
				}
				obsSlots[k] = &ob
				return nil
			}
		}
		ob, rerr := reconstructRoom(captures[i], i, tracks[i], agg, cfg)
		ds.storeRoom(captures[i], i, tracks[i], agg, ob, rerr)
		if rerr != nil {
			mu.Lock()
			res.RoomFailures[captures[i].ID] = rerr
			mu.Unlock()
			return nil // room failures degrade the plan, not the run
		}
		obsSlots[k] = &ob
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, ob := range obsSlots {
		if ob != nil {
			res.RoomObservations = append(res.RoomObservations, *ob)
		}
	}
	roomsDone()
	reg.Counter("rooms.observed").Add(int64(len(res.RoomObservations)))
	reg.Counter("rooms.failed").Add(int64(len(res.RoomFailures)))

	// Stage 5: deduplicate room observations and place them.
	placeDone := obs.Stage(reg, "place")
	placedObs := dedupRooms(res.RoomObservations, cfg.RoomMergeRadius)
	rooms, err := floorplan.PlaceRooms(placedObs, mask, cfg.ForceDir)
	if err != nil {
		return nil, fmt.Errorf("crowdmap: room placement: %w", err)
	}
	placeDone()
	reg.Counter("rooms.placed").Add(int64(len(rooms)))

	res.Plan = &floorplan.Plan{
		Building:     captures[0].Geo.Building,
		HallwayMask:  mask,
		HallwayShape: shape,
		Rooms:        rooms,
		Trajectories: global,
	}
	totalDone()
	_ = ckpt.Complete(cfg.JobID, StagePlan, fp, nil)
	ds.finish()
	res.Metrics = reg.Snapshot()
	return res, nil
}

// extractTrack runs the key-frame front-end for one capture.
func extractTrack(c *Capture, cfg Config) ([]*KeyFrame, *Trajectory, error) {
	return keyframe.Extract(c, cfg.Keyframe)
}

// ParallelAggregate memoizes all pair comparisons with bounded parallelism
// and then runs the aggregation graph logic over the memo. It is the
// library's equivalent of the paper's PySpark acceleration of trajectory
// aggregation. A non-nil cache short-circuits pairs whose decision is
// already known from a previous job (see aggregate.PairCache); pass nil to
// compare every pair from scratch.
func ParallelAggregate(ctx context.Context, tracks []*Track, p aggregate.Params, workers int, cache *aggregate.PairCache) (*aggregate.Result, error) {
	cmp := func(ai, bi int, a, b *aggregate.Track, pp aggregate.Params) (aggregate.Match, bool, error) {
		if len(a.KFs) == 0 || len(b.KFs) == 0 {
			// Key-frame-less (trajectory-routed) tracks carry nothing the
			// visual comparison can match. The decision is the same no-match
			// the anchor search would reach, but skipping it keeps these
			// pairs out of the cache — their decision is not worth an entry.
			return aggregate.Match{}, false, nil
		}
		return aggregate.ComparePairCached(ai, bi, a, b, pp, cache)
	}
	res, err := parallelAggregate(ctx, tracks, p, workers, cmp)
	if err == nil && cache != nil {
		p.KF.Obs.Gauge("compare.cache.entries").Set(float64(cache.Len()))
	}
	return res, err
}

// parallelAggregate memoizes cmp over all pairs with bounded parallelism
// and replays the memo through the sequential aggregation graph. Shared by
// the vision path (cached anchor comparison) and the trajectory path
// (turn-anchor comparison, uncached).
func parallelAggregate(ctx context.Context, tracks []*Track, p aggregate.Params, workers int, cmp aggregate.PairComparer) (*aggregate.Result, error) {
	type cell struct {
		m  aggregate.Match
		ok bool
	}
	memo := make(map[[2]int]cell)
	var mu sync.Mutex
	pairs := pipeline.Pairs(len(tracks))
	// MapAll: a failing pair comparison — an error or a panic recovered in
	// the worker — degrades to "no match" for that pair rather than
	// aborting the job. A pair failure cannot be attributed to either
	// capture alone, so neither is excluded; the pair simply contributes
	// no merge evidence, and the failure count is observable on
	// aggregate.pairs.failed. Failures are deterministic for given inputs,
	// so the degraded decision is too.
	errs, ctxErr := pipeline.MapAll(ctx, len(pairs), workers, func(_ context.Context, i int) error {
		pr := pairs[i]
		m, ok, err := cmp(pr.I, pr.J, tracks[pr.I], tracks[pr.J], p)
		if err != nil {
			return err
		}
		mu.Lock()
		memo[[2]int{pr.I, pr.J}] = cell{m: m, ok: ok}
		mu.Unlock()
		return nil
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	failed := 0
	for i, err := range errs {
		if err != nil {
			memo[[2]int{pairs[i].I, pairs[i].J}] = cell{}
			failed++
		}
	}
	if failed > 0 {
		p.KF.Obs.Counter("aggregate.pairs.failed").Add(int64(failed))
	}
	replay := func(ai, bi int, _, _ *aggregate.Track, _ aggregate.Params) (aggregate.Match, bool, error) {
		c, found := memo[[2]int{ai, bi}]
		if !found {
			return aggregate.Match{}, false, fmt.Errorf("crowdmap: missing memoized pair (%d,%d)", ai, bi)
		}
		return c.m, c.ok, nil
	}
	return aggregate.Aggregate(tracks, p, replay)
}

// reconstructRoom builds the panorama for one SRS/Visit capture and
// estimates the room layout, yielding an observation in the global frame.
// trackIdx indexes the capture's track in the aggregation result.
func reconstructRoom(c *Capture, trackIdx int, tr *Track, agg *aggregate.Result, cfg Config) (floorplan.RoomObservation, error) {
	offset, placed := agg.Offsets[trackIdx]
	if !placed {
		return floorplan.RoomObservation{}, fmt.Errorf("crowdmap: track %s not placed by aggregation", tr.ID)
	}
	srs := srsKeyFrames(tr.KFs, tr.Traj, cfg.Keyframe.EffectiveStayRadius())
	pn, err := stitchRoomPanorama(srs, c.Camera, cfg)
	if err != nil {
		return floorplan.RoomObservation{}, fmt.Errorf("crowdmap: panorama for %s: %w", c.ID, err)
	}
	l, err := estimateLayout(pn, cfg, int64(trackIdx))
	if err != nil {
		return floorplan.RoomObservation{}, fmt.Errorf("crowdmap: layout for %s: %w", c.ID, err)
	}
	// Camera position in the global frame: the SRS stand point (trajectory
	// start) plus this track's aggregation offset.
	camPos := tr.Traj.Points[0].Pos.Add(offset)
	return floorplan.RoomObservation{
		ID:         c.RoomID, // evaluation label only; placement is geometric
		CameraPos:  camPos,
		RoomLayout: l,
	}, nil
}

// dedupRooms merges observations whose estimated room centers lie within
// radius, keeping the best-scoring layout of each cluster. The decision is
// purely geometric (the paper merges key-frames per occupancy cell); room
// IDs ride along as evaluation labels only.
//
// Clusters are the connected components of the "centers within radius"
// graph. Pairwise-against-the-seed membership (the previous behavior)
// made A–B–C chains split or merge depending on input order: with seed A,
// C fell outside A's radius and became its own room even though both are
// within radius of B. Components are order-independent, so the plan is
// identical however the observations arrive.
func dedupRooms(obs []floorplan.RoomObservation, radius float64) []floorplan.RoomObservation {
	if radius <= 0 || len(obs) < 2 {
		return obs
	}
	n := len(obs)
	centers := make([]geom.Pt, n)
	for i, o := range obs {
		centers[i] = o.CameraPos.Add(o.RoomLayout.CenterOffset())
	}
	// Union-find with the smallest member index as the root, so component
	// identity (and hence output order) is deterministic.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if centers[j].Dist(centers[i]) <= radius {
				ri, rj := find(i), find(j)
				if ri != rj {
					if ri > rj {
						ri, rj = rj, ri
					}
					parent[rj] = ri
				}
			}
		}
	}
	// One representative per component: the highest-scoring member (ties
	// go to the earliest), emitted in order of each component's first
	// member.
	best := make(map[int]int, n)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		b, seen := best[r]
		if !seen {
			best[r] = i
			roots = append(roots, r)
		} else if obs[i].RoomLayout.Score > obs[b].RoomLayout.Score {
			best[r] = i
		}
	}
	out := make([]floorplan.RoomObservation, 0, len(roots))
	for _, r := range roots {
		out = append(out, obs[best[r]])
	}
	return out
}

// srsKeyFrames selects the key-frames captured during the stationary spin
// phase: those whose dead-reckoned position stays within stayRadius of the
// trajectory start.
func srsKeyFrames(kfs []*KeyFrame, traj *Trajectory, stayRadius float64) []*KeyFrame {
	if len(traj.Points) == 0 {
		return nil
	}
	start := traj.Points[0].Pos
	var out []*KeyFrame
	for _, kf := range kfs {
		if kf.LocalPos.Dist(start) <= stayRadius {
			out = append(out, kf)
		}
	}
	return out
}

// stitchRoomPanorama selects an admissible covering subset of SRS
// key-frames and stitches them.
func stitchRoomPanorama(kfs []*KeyFrame, cam world.Camera, cfg Config) (*pano.Panorama, error) {
	if len(kfs) == 0 {
		return nil, fmt.Errorf("crowdmap: no stationary key-frames for panorama")
	}
	p := cfg.Pano
	p.FOV = cam.FOV
	p.Pitch = cam.Pitch
	headings := make([]float64, len(kfs))
	for i, kf := range kfs {
		headings[i] = kf.Heading
	}
	sel, err := pano.SelectCover(headings, p)
	if err != nil {
		return nil, err
	}
	frames := make([]pano.Frame, len(sel))
	for i, idx := range sel {
		frames[i] = pano.Frame{Image: kfs[idx].Image, Heading: kfs[idx].Heading}
	}
	selHeadings := make([]float64, len(frames))
	for i, f := range frames {
		selHeadings[i] = f.Heading
	}
	if err := pano.Admissible(selHeadings, p); err != nil {
		return nil, err
	}
	// Gyro headings are good to a degree or two; image registration
	// polishes the relative alignment before blending (the AutoStitch
	// role).
	refined, err := pano.RefineHeadings(frames, p, 3, 0.5)
	if err != nil {
		return nil, err
	}
	for i := range frames {
		frames[i].Heading = refined[i]
	}
	return pano.Stitch(frames, p)
}

// estimateLayout wraps layout estimation with the pipeline seed.
func estimateLayout(pn *pano.Panorama, cfg Config, seed int64) (layout.Layout, error) {
	lp := cfg.Layout
	return layout.Estimate(pn, lp, mathx.NewRNG(cfg.Seed*1_000_003+seed))
}
